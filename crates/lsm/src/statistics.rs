//! Engine-level counters used by the evaluation harness (throughput
//! breakdowns, Table 3 I/O attribution, DEK accounting).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

macro_rules! tickers {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Monotonic engine counters.
        #[derive(Default)]
        pub struct Statistics {
            $($(#[$doc])* pub $name: AtomicU64,)*
        }

        /// A point-in-time copy of [`Statistics`].
        #[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)*
        }

        impl Statistics {
            /// Creates a zeroed, shareable counter set.
            #[must_use]
            pub fn new() -> Arc<Self> {
                Arc::new(Self::default())
            }

            /// Copies all counters.
            #[must_use]
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)*
                }
            }
        }
    };
}

tickers! {
    /// Write operations applied (entries, not batches).
    writes,
    /// Batches committed through the group-commit leader.
    write_groups,
    /// Bytes appended to the WAL (plaintext size).
    wal_bytes,
    /// WAL sync/flush calls.
    wal_syncs,
    /// Point lookups served.
    gets,
    /// Point lookups that found a value.
    gets_found,
    /// Memtable flushes completed.
    flushes,
    /// Bytes written by flushes.
    flush_bytes,
    /// Compactions completed.
    compactions,
    /// Microseconds spent executing compactions.
    compaction_micros,
    /// Bytes read by compaction inputs.
    compaction_bytes_read,
    /// Bytes written by compaction outputs.
    compaction_bytes_written,
    /// SST files created (flush + compaction).
    sst_files_created,
    /// SST files deleted (obsolete after compaction).
    sst_files_deleted,
    /// Block-cache hits.
    block_cache_hits,
    /// Block-cache misses.
    block_cache_misses,
    /// Bloom-filter negative hits (reads avoided).
    bloom_useful,
    /// Write stalls triggered by L0/immutable backpressure.
    write_stalls,
    /// Microseconds writers spent stalled.
    stall_micros,
}

impl StatsSnapshot {
    /// Difference `self - earlier` per counter (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            writes: self.writes.saturating_sub(earlier.writes),
            write_groups: self.write_groups.saturating_sub(earlier.write_groups),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            wal_syncs: self.wal_syncs.saturating_sub(earlier.wal_syncs),
            gets: self.gets.saturating_sub(earlier.gets),
            gets_found: self.gets_found.saturating_sub(earlier.gets_found),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            flush_bytes: self.flush_bytes.saturating_sub(earlier.flush_bytes),
            compactions: self.compactions.saturating_sub(earlier.compactions),
            compaction_micros: self.compaction_micros.saturating_sub(earlier.compaction_micros),
            compaction_bytes_read: self
                .compaction_bytes_read
                .saturating_sub(earlier.compaction_bytes_read),
            compaction_bytes_written: self
                .compaction_bytes_written
                .saturating_sub(earlier.compaction_bytes_written),
            sst_files_created: self.sst_files_created.saturating_sub(earlier.sst_files_created),
            sst_files_deleted: self.sst_files_deleted.saturating_sub(earlier.sst_files_deleted),
            block_cache_hits: self.block_cache_hits.saturating_sub(earlier.block_cache_hits),
            block_cache_misses: self
                .block_cache_misses
                .saturating_sub(earlier.block_cache_misses),
            bloom_useful: self.bloom_useful.saturating_sub(earlier.bloom_useful),
            write_stalls: self.write_stalls.saturating_sub(earlier.write_stalls),
            stall_micros: self.stall_micros.saturating_sub(earlier.stall_micros),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = Statistics::new();
        s.writes.fetch_add(10, Ordering::Relaxed);
        let a = s.snapshot();
        s.writes.fetch_add(5, Ordering::Relaxed);
        s.gets.fetch_add(2, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.writes, 5);
        assert_eq!(d.gets, 2);
        assert_eq!(d.flushes, 0);
    }
}
