//! Opens and reads SST files: footer → index → (cached, decrypted) blocks.
//!
//! All block reads go through [`BlockFetcher`] (cache lookup →
//! single-flight verified read), so a `Table` no longer owns private
//! copies of its index and filter: they are cached, charged blocks pinned
//! for the table's lifetime, and survive table-cache eviction as block
//! cache hits on reopen.

use std::sync::Arc;

use shield_core::{perf, PerfCounter};
use shield_env::RandomAccessFile;

use crate::cache::{BlockCache, BlockKind};
use crate::error::{Error, Result};
use crate::integrity::{IntegrityCtx, ReadIntegrity};
use crate::iter::InternalIterator;
use crate::sst::block::BlockIter;
use crate::sst::fetcher::{read_verified, BlockFetcher, FetchedBlock};
use crate::sst::filter::BloomFilterReader;
use crate::sst::format::{BlockHandle, Footer, TableProperties, FOOTER_LEN, FOOTER_V2_LEN};
use crate::types::{extract_user_key, make_lookup_key, SequenceNumber};

/// One resolved point lookup: the matching `(internal_key, value)` entry
/// if the table holds one visible at the queried sequence.
pub type LookupResult = Result<Option<(Vec<u8>, Vec<u8>)>>;

/// An open, immutable table file.
pub struct Table {
    file: Arc<dyn RandomAccessFile>,
    /// Unique id used as the block-cache key prefix (the file number).
    table_id: u64,
    fetcher: Arc<BlockFetcher>,
    /// Index block, pinned (and charged) for the table's lifetime.
    index: FetchedBlock,
    /// Filter block pin plus a reader sharing the block's allocation.
    filter: Option<(FetchedBlock, BloomFilterReader)>,
    props: TableProperties,
    /// Engine tickers (bloom_useful); `None` for standalone tables.
    stats: Option<Arc<crate::statistics::Statistics>>,
    /// HMAC verification context (`Some` iff the file is format v2);
    /// threaded into every block fetch.
    integrity: Option<IntegrityCtx>,
    /// Per-block trailer length for this file's format version.
    trailer_len: usize,
}

impl Table {
    /// Opens a table. `file` must already be decryption-wrapped if the
    /// table is encrypted (see [`crate::encryption::EncryptionConfig`]).
    pub fn open(
        file: Arc<dyn RandomAccessFile>,
        table_id: u64,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Table> {
        Self::open_with_stats(file, table_id, cache, None)
    }

    /// [`Table::open`] with an engine ticker sink, so bloom-filter
    /// negatives are credited to `bloom_useful`.
    pub fn open_with_stats(
        file: Arc<dyn RandomAccessFile>,
        table_id: u64,
        cache: Option<Arc<BlockCache>>,
        stats: Option<Arc<crate::statistics::Statistics>>,
    ) -> Result<Table> {
        Self::open_with_fetcher(
            file,
            table_id,
            BlockFetcher::new(cache, 0),
            stats,
            ReadIntegrity::default(),
        )
    }

    /// Opens a table over a shared fetcher (the normal engine path: one
    /// fetcher per `TableCache`, so all tables share its cache, in-flight
    /// table, and prefetch pool). `integrity` supplies the MAC key that
    /// verifies format-v2 tables; the file's footer version — not the
    /// engine option — decides whether verification runs.
    pub fn open_with_fetcher(
        file: Arc<dyn RandomAccessFile>,
        table_id: u64,
        fetcher: Arc<BlockFetcher>,
        stats: Option<Arc<crate::statistics::Statistics>>,
        integrity: ReadIntegrity,
    ) -> Result<Table> {
        let len = file.len()?;
        if (len as usize) < FOOTER_LEN {
            return Err(Error::Corruption("table smaller than footer".into()));
        }
        let tail_len = (len as usize).min(FOOTER_V2_LEN);
        let footer_data = file.read_at(len - tail_len as u64, tail_len)?;
        let footer = Footer::decode_from_tail(&footer_data)?;
        let trailer_len = footer.block_trailer_len();
        let ctx = if footer.version >= 2 {
            Some(IntegrityCtx {
                key: integrity.key,
                context: footer.context,
                file_number: table_id,
                stats: stats.clone(),
                events: integrity.events.clone(),
            })
        } else {
            if integrity.expect_hmac {
                // Legacy file under Hmac mode: readable, unverified —
                // surfaced so operators can watch compaction retire it.
                if let Some(stats) = &stats {
                    stats
                        .integrity_unprotected_files
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
            None
        };
        let index =
            fetcher.fetch(&file, table_id, footer.index, BlockKind::Index, true, ctx.as_ref())?;
        let filter = if footer.filter.size > 0 {
            let block = fetcher.fetch(
                &file,
                table_id,
                footer.filter,
                BlockKind::Filter,
                true,
                ctx.as_ref(),
            )?;
            let reader = BloomFilterReader::from_bytes(block.block().raw_bytes().clone());
            Some((block, reader))
        } else {
            None
        };
        // Properties are decoded once into owned fields; no reason to
        // hold the raw block in cache.
        let props_raw = read_verified(file.as_ref(), footer.properties, ctx.as_ref())?;
        let props = TableProperties::decode(&props_raw)?;
        Ok(Table {
            file,
            table_id,
            fetcher,
            index,
            filter,
            props,
            stats,
            integrity: ctx,
            trailer_len,
        })
    }

    /// Table-level metadata.
    #[must_use]
    pub fn properties(&self) -> &TableProperties {
        &self.props
    }

    /// The id used for cache keys.
    #[must_use]
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// Loads a data block through the fetcher.
    fn data_block(&self, handle: BlockHandle, fill_cache: bool) -> Result<FetchedBlock> {
        self.fetcher.fetch(
            &self.file,
            self.table_id,
            handle,
            BlockKind::Data,
            fill_cache,
            self.integrity.as_ref(),
        )
    }

    /// Point lookup: returns the first entry for `user_key` visible at
    /// `seq`, as `(internal_key, value)`, or `None`.
    pub fn get(&self, user_key: &[u8], seq: SequenceNumber) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        self.get_opt(user_key, seq, true)
    }

    /// [`Table::get`] with cache-admission control (`fill_cache = false`
    /// reads around the cache without disturbing residency).
    pub fn get_opt(
        &self,
        user_key: &[u8],
        seq: SequenceNumber,
        fill_cache: bool,
    ) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if let Some((_, filter)) = &self.filter {
            perf::incr(PerfCounter::BloomProbes, 1);
            if !filter.may_contain(user_key) {
                if let Some(stats) = &self.stats {
                    stats.bloom_useful.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                return Ok(None);
            }
        }
        let lookup = make_lookup_key(user_key, seq);
        let mut index_iter = self.index.block().iter();
        index_iter.seek(&lookup);
        if !index_iter.valid() {
            return Ok(None);
        }
        let handle = BlockHandle::decode_varint(index_iter.value())?;
        let block = self.data_block(handle, fill_cache)?;
        let mut it = block.block().iter();
        it.seek(&lookup);
        if it.valid() && extract_user_key(it.key()) == user_key {
            return Ok(Some((it.key().to_vec(), it.value().to_vec())));
        }
        // The target may be the first key of the *next* block when the
        // lookup key falls exactly between blocks.
        index_iter.next();
        if index_iter.valid() {
            let handle = BlockHandle::decode_varint(index_iter.value())?;
            let block = self.data_block(handle, fill_cache)?;
            let mut it = block.block().iter();
            it.seek(&lookup);
            if it.valid() && extract_user_key(it.key()) == user_key {
                return Ok(Some((it.key().to_vec(), it.value().to_vec())));
            }
        }
        Ok(None)
    }

    /// Batched point lookup: one slot per key, each equivalent to
    /// [`Table::get_opt`] at the same `seq`, but every data block the
    /// batch needs is fetched through [`BlockFetcher::get_many`] — the
    /// file sees one `read_at_many` submission per round instead of one
    /// read per key. Errors are per-slot: a corrupt block fails only the
    /// keys that needed it.
    pub fn get_many_opt(
        &self,
        keys: &[&[u8]],
        seq: SequenceNumber,
        fill_cache: bool,
    ) -> Vec<LookupResult> {
        type Slot = Option<LookupResult>;
        let mut out: Vec<Slot> = vec![None; keys.len()];
        // (slot, lookup key, handle to read, is this the next-block retry)
        let mut round: Vec<(usize, Vec<u8>, BlockHandle, bool)> = Vec::new();
        for (i, user_key) in keys.iter().enumerate() {
            if let Some((_, filter)) = &self.filter {
                perf::incr(PerfCounter::BloomProbes, 1);
                if !filter.may_contain(user_key) {
                    if let Some(stats) = &self.stats {
                        stats.bloom_useful.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    out[i] = Some(Ok(None));
                    continue;
                }
            }
            let lookup = make_lookup_key(user_key, seq);
            let mut index_iter = self.index.block().iter();
            index_iter.seek(&lookup);
            if !index_iter.valid() {
                out[i] = Some(Ok(None));
                continue;
            }
            match BlockHandle::decode_varint(index_iter.value()) {
                Ok(handle) => round.push((i, lookup, handle, false)),
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        // At most two rounds: the primary block per key, then (for keys
        // that fall exactly between blocks) the next block. Each round is
        // one deduplicated get_many over this file.
        while !round.is_empty() {
            let mut req_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
            let mut reqs: Vec<crate::sst::fetcher::BlockRequest> = Vec::new();
            for &(_, _, handle, _) in &round {
                req_of.entry(handle.offset).or_insert_with(|| {
                    reqs.push(crate::sst::fetcher::BlockRequest { handle, kind: BlockKind::Data });
                    reqs.len() - 1
                });
            }
            let fetched =
                self.fetcher.get_many(&self.file, self.table_id, &reqs, fill_cache, self.integrity.as_ref());
            let mut next_round = Vec::new();
            for (slot, lookup, handle, is_retry) in round {
                let user_key = keys[slot];
                match &fetched[req_of[&handle.offset]] {
                    Err(e) => out[slot] = Some(Err(e.clone())),
                    Ok(block) => {
                        let mut it = block.block().iter();
                        it.seek(&lookup);
                        if it.valid() && extract_user_key(it.key()) == user_key {
                            out[slot] = Some(Ok(Some((it.key().to_vec(), it.value().to_vec()))));
                            continue;
                        }
                        if is_retry {
                            out[slot] = Some(Ok(None));
                            continue;
                        }
                        // The target may be the first key of the *next*
                        // block when the lookup falls exactly between
                        // blocks — same fallback as get_opt.
                        let mut index_iter = self.index.block().iter();
                        index_iter.seek(&lookup);
                        index_iter.next();
                        if !index_iter.valid() {
                            out[slot] = Some(Ok(None));
                            continue;
                        }
                        match BlockHandle::decode_varint(index_iter.value()) {
                            Ok(next) => next_round.push((slot, lookup, next, true)),
                            Err(e) => out[slot] = Some(Err(e)),
                        }
                    }
                }
            }
            round = next_round;
        }
        out.into_iter().map(|slot| slot.expect("every key resolved")).collect()
    }

    /// True if the bloom filter rules out `user_key` (used by stats).
    #[must_use]
    pub fn filter_rules_out(&self, user_key: &[u8]) -> bool {
        self.filter.as_ref().is_some_and(|(_, f)| !f.may_contain(user_key))
    }

    /// Per-data-block `(last user key, stored bytes)` spans from the
    /// index block, in key order. Subcompaction planning uses these to
    /// place byte-balanced boundaries without reading any data blocks.
    /// Index keys are full internal keys (the builder records each
    /// block's last key verbatim), so stripping the trailer yields a
    /// real user key.
    pub fn index_spans(&self) -> Result<Vec<(Vec<u8>, u64)>> {
        let mut spans = Vec::new();
        let mut it = self.index.block().iter();
        it.seek_to_first();
        while it.valid() {
            let handle = BlockHandle::decode_varint(it.value())?;
            spans.push((
                extract_user_key(it.key()).to_vec(),
                handle.size + self.trailer_len as u64,
            ));
            it.next();
        }
        Ok(spans)
    }

    /// A full-table iterator with the fetcher's default readahead depth.
    #[must_use]
    pub fn iter(self: &Arc<Self>) -> TableIterator {
        self.iter_with_readahead(self.fetcher.readahead_blocks())
    }

    /// A full-table iterator prefetching up to `readahead_blocks` data
    /// blocks ahead of the read position (0 disables readahead).
    #[must_use]
    pub fn iter_with_readahead(self: &Arc<Self>, readahead_blocks: usize) -> TableIterator {
        TableIterator {
            table: self.clone(),
            index_iter: self.index.block().iter(),
            data_iter: None,
            data_pin: None,
            readahead_blocks,
            prefetch_watermark: 0,
            status: Ok(()),
        }
    }
}

/// Two-level iterator: index entries → data blocks.
///
/// Holds a pin on the current data block (so the cache cannot evict it
/// mid-iteration) and, when readahead is enabled, issues bounded prefetch
/// of upcoming blocks each time it crosses into a new one.
pub struct TableIterator {
    table: Arc<Table>,
    index_iter: BlockIter,
    data_iter: Option<BlockIter>,
    /// Cache pin for the block `data_iter` walks (`None` when uncached).
    data_pin: Option<FetchedBlock>,
    /// How many blocks ahead to prefetch (0 = off).
    readahead_blocks: usize,
    /// File offset up to which prefetch has been issued, so each block is
    /// requested at most once per forward pass.
    prefetch_watermark: u64,
    status: Result<()>,
}

impl TableIterator {
    /// Loads the data block the index currently points at.
    fn init_data_block(&mut self) {
        self.data_iter = None;
        self.data_pin = None;
        if !self.index_iter.valid() {
            return;
        }
        match BlockHandle::decode_varint(self.index_iter.value())
            .and_then(|h| self.table.data_block(h, true))
        {
            Ok(block) => {
                self.data_iter = Some(block.block().iter());
                self.data_pin = Some(block);
                self.issue_readahead();
            }
            Err(e) => self.status = Err(e),
        }
    }

    /// Queues prefetch for up to `readahead_blocks` index entries past the
    /// current one. Uses a fresh iterator over the (pinned) index block so
    /// the read position is untouched; the watermark keeps a forward scan
    /// from re-requesting blocks it already asked for.
    fn issue_readahead(&mut self) {
        if self.readahead_blocks == 0 || !self.index_iter.valid() {
            return;
        }
        let mut it = self.table.index.block().iter();
        it.seek(self.index_iter.key());
        if !it.valid() {
            return;
        }
        for _ in 0..self.readahead_blocks {
            it.next();
            if !it.valid() {
                return;
            }
            let Ok(handle) = BlockHandle::decode_varint(it.value()) else { return };
            if handle.offset <= self.prefetch_watermark {
                continue;
            }
            self.prefetch_watermark = handle.offset;
            self.table.fetcher.prefetch(
                &self.table.file,
                self.table.table_id,
                handle,
                self.table.integrity.as_ref(),
            );
        }
    }

    /// Moves forward past empty blocks until the data iterator is valid or
    /// the table is exhausted.
    fn skip_empty_blocks_forward(&mut self) {
        while self.data_iter.as_ref().is_none_or(|d| !d.valid()) {
            if !self.index_iter.valid() || self.status.is_err() {
                self.data_iter = None;
                self.data_pin = None;
                return;
            }
            self.index_iter.next();
            self.init_data_block();
            if let Some(d) = &mut self.data_iter {
                d.seek_to_first();
            }
        }
    }
}

impl InternalIterator for TableIterator {
    fn valid(&self) -> bool {
        self.data_iter.as_ref().is_some_and(BlockIter::valid)
    }

    fn seek_to_first(&mut self) {
        self.index_iter.seek_to_first();
        self.init_data_block();
        if let Some(d) = &mut self.data_iter {
            d.seek_to_first();
        }
        self.skip_empty_blocks_forward();
    }

    fn seek(&mut self, target: &[u8]) {
        self.index_iter.seek(target);
        self.init_data_block();
        if let Some(d) = &mut self.data_iter {
            d.seek(target);
        }
        self.skip_empty_blocks_forward();
    }

    fn next(&mut self) {
        if let Some(d) = &mut self.data_iter {
            d.next();
        }
        self.skip_empty_blocks_forward();
    }

    fn key(&self) -> &[u8] {
        self.data_iter.as_ref().expect("valid").key()
    }

    fn value(&self) -> &[u8] {
        self.data_iter.as_ref().expect("valid").value()
    }

    fn status(&self) -> Result<()> {
        self.status.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sst::builder::{TableBuilder, TableBuilderOptions};
    use crate::types::{make_internal_key, ValueType};
    use shield_env::{Env, FileKind, MemEnv};

    fn build_table(env: &MemEnv, path: &str, n: u32, block_size: usize) -> Arc<Table> {
        let file = env.new_writable_file(path, FileKind::Sst).unwrap();
        let opts = TableBuilderOptions { block_size, ..TableBuilderOptions::default() };
        let mut b = TableBuilder::new(file, opts);
        for i in 0..n {
            let ik = make_internal_key(format!("key{i:06}").as_bytes(), 10, ValueType::Value);
            b.add(&ik, format!("value-{i}").as_bytes()).unwrap();
        }
        b.finish().unwrap();
        let file = env.new_random_access_file(path, FileKind::Sst).unwrap();
        Arc::new(Table::open(file, 1, None).unwrap())
    }

    #[test]
    fn get_existing_and_missing() {
        let env = MemEnv::new();
        let t = build_table(&env, "t.sst", 1000, 512);
        let hit = t.get(b"key000500", 100).unwrap().unwrap();
        assert_eq!(hit.1, b"value-500");
        assert!(t.get(b"key999999", 100).unwrap().is_none());
        assert!(t.get(b"absent", 100).unwrap().is_none());
    }

    #[test]
    fn get_many_matches_serial_gets() {
        let env = MemEnv::new();
        // Small blocks so the batch spans many blocks, including keys
        // that fall exactly on block boundaries.
        let t = build_table(&env, "t.sst", 500, 256);
        let names: Vec<String> = (0..500)
            .step_by(7)
            .map(|i| format!("key{i:06}"))
            .chain(["key999999".into(), "absent".into(), "key000000".into()])
            .collect();
        let keys: Vec<&[u8]> = names.iter().map(String::as_bytes).collect();
        let batched = t.get_many_opt(&keys, 100, true);
        assert_eq!(batched.len(), keys.len());
        for (key, got) in keys.iter().zip(batched) {
            let serial = t.get_opt(key, 100, true).unwrap();
            assert_eq!(got.unwrap(), serial, "divergence on {:?}", String::from_utf8_lossy(key));
        }
        // Sequence visibility carries through the batched path.
        let early = t.get_many_opt(&[b"key000001"], 5, true);
        assert!(early[0].as_ref().unwrap().is_none());
    }

    #[test]
    fn get_respects_sequence_visibility() {
        let env = MemEnv::new();
        let t = build_table(&env, "t.sst", 10, 4096);
        // All entries written at seq 10: invisible at seq 5.
        assert!(t.get(b"key000001", 5).unwrap().is_none());
        assert!(t.get(b"key000001", 10).unwrap().is_some());
    }

    #[test]
    fn iterator_scans_everything_in_order() {
        let env = MemEnv::new();
        let t = build_table(&env, "t.sst", 500, 256);
        let mut it = t.iter();
        it.seek_to_first();
        let mut count = 0;
        let mut prev: Option<Vec<u8>> = None;
        while it.valid() {
            let k = it.key().to_vec();
            if let Some(p) = &prev {
                assert!(crate::types::internal_key_cmp(p, &k) == std::cmp::Ordering::Less);
            }
            prev = Some(k);
            count += 1;
            it.next();
        }
        assert_eq!(count, 500);
        it.status().unwrap();
    }

    #[test]
    fn iterator_seek_mid_table() {
        let env = MemEnv::new();
        let t = build_table(&env, "t.sst", 500, 256);
        let mut it = t.iter();
        it.seek(&make_internal_key(b"key000250", u64::MAX >> 8, ValueType::Value));
        assert!(it.valid());
        assert_eq!(extract_user_key(it.key()), b"key000250");
        // Count remaining.
        let mut rest = 0;
        while it.valid() {
            rest += 1;
            it.next();
        }
        assert_eq!(rest, 250);
    }

    #[test]
    fn corrupted_block_detected() {
        let env = MemEnv::new();
        build_table(&env, "t.sst", 100, 4096);
        let mut raw = env.raw_content("t.sst").unwrap();
        raw[10] ^= 0xff; // corrupt inside first data block
        {
            let mut f = env.new_writable_file("t.sst", FileKind::Sst).unwrap();
            f.append(&raw).unwrap();
            f.sync().unwrap();
        }
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let t = Arc::new(Table::open(file, 1, None).unwrap()); // footer/index intact
        let err = t.get(b"key000001", 100).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn bloom_filter_short_circuits() {
        let env = MemEnv::new();
        let t = build_table(&env, "t.sst", 1000, 512);
        // A key far outside the table: bloom should rule it out.
        let mut ruled_out = 0;
        for i in 0..100 {
            if t.filter_rules_out(format!("zzz-{i}").as_bytes()) {
                ruled_out += 1;
            }
        }
        assert!(ruled_out > 90, "bloom ruled out only {ruled_out}/100");
    }

    #[test]
    fn block_cache_serves_repeat_reads() {
        let env = MemEnv::new();
        {
            let t = build_table(&env, "t.sst", 1000, 512);
            drop(t);
        }
        let cache = BlockCache::new(1 << 20);
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let t = Arc::new(Table::open(file, 7, Some(cache.clone())).unwrap());
        let _ = t.get(b"key000100", 100).unwrap();
        let (h0, _) = cache.hit_miss();
        let _ = t.get(b"key000100", 100).unwrap();
        let (h1, _) = cache.hit_miss();
        assert!(h1 > h0, "second read should hit the cache");
    }

    #[test]
    fn index_and_filter_are_cached_and_pinned() {
        let env = MemEnv::new();
        {
            let t = build_table(&env, "t.sst", 1000, 512);
            drop(t);
        }
        let cache = BlockCache::new(1 << 20);
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let t = Arc::new(Table::open(file, 7, Some(cache.clone())).unwrap());
        let s = cache.stats();
        assert_eq!(s.index_misses, 1, "index block admitted via fetcher");
        assert_eq!(s.filter_misses, 1, "filter block admitted via fetcher");
        assert!(s.pinned_bytes > 0, "index/filter pins are charged");
        assert!(cache.usage() as u64 >= s.pinned_bytes);
        // Reopening the same file hits the cache for both blocks.
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let t2 = Arc::new(Table::open(file, 7, Some(cache.clone())).unwrap());
        let s = cache.stats();
        assert_eq!((s.index_hits, s.filter_hits), (1, 1));
        drop(t);
        drop(t2);
        assert_eq!(cache.stats().pinned_bytes, 0, "pins released with tables");
    }

    #[test]
    fn fill_cache_false_reads_around_cache() {
        let env = MemEnv::new();
        {
            let t = build_table(&env, "t.sst", 1000, 512);
            drop(t);
        }
        let cache = BlockCache::new(1 << 20);
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let t = Arc::new(Table::open(file, 7, Some(cache.clone())).unwrap());
        let before = cache.len();
        let hit = t.get_opt(b"key000500", 100, false).unwrap().unwrap();
        assert_eq!(hit.1, b"value-500");
        assert_eq!(cache.len(), before, "no-fill get must not admit data blocks");
    }

    #[test]
    fn readahead_iterator_scans_correctly() {
        let env = MemEnv::new();
        {
            let t = build_table(&env, "t.sst", 500, 256);
            drop(t);
        }
        // `readahead_issued` counts prefetches that actually lead a read,
        // so give the link a little latency: on an instant in-memory file
        // the foreground scan can win every race and legitimately issue 0.
        let remote = shield_env::RemoteEnv::new(
            Arc::new(env),
            shield_env::NetworkModel {
                rtt: std::time::Duration::from_micros(200),
                bandwidth_bytes_per_sec: None,
                write_packet_bytes: 64 * 1024,
            },
        );
        let cache = BlockCache::new(1 << 20);
        let file = remote.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let fetcher = BlockFetcher::new(Some(cache.clone()), 4);
        let t = Arc::new(
            Table::open_with_fetcher(file, 7, fetcher, None, ReadIntegrity::default()).unwrap(),
        );
        let mut it = t.iter(); // inherits readahead depth 4
        it.seek_to_first();
        let mut count = 0;
        while it.valid() {
            count += 1;
            it.next();
        }
        assert_eq!(count, 500);
        it.status().unwrap();
        // Workers may still be draining the queue; poll briefly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while cache.stats().readahead_issued == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(cache.stats().readahead_issued > 0, "scan should issue prefetch");
    }

    #[test]
    fn hmac_table_end_to_end_get_scan_and_tamper() {
        let key = [5u8; 32];
        let env = MemEnv::new();
        let file = env.new_writable_file("t.sst", FileKind::Sst).unwrap();
        let opts = TableBuilderOptions {
            block_size: 256,
            mac_key: Some(key),
            ..TableBuilderOptions::default()
        };
        let mut b = TableBuilder::new(file, opts);
        for i in 0..300u32 {
            let ik = make_internal_key(format!("key{i:06}").as_bytes(), 10, ValueType::Value);
            b.add(&ik, format!("value-{i}").as_bytes()).unwrap();
        }
        b.finish().unwrap();
        let open = |env: &MemEnv| {
            let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
            Table::open_with_fetcher(
                file,
                9,
                BlockFetcher::new(None, 0),
                None,
                ReadIntegrity { key, expect_hmac: true, events: None },
            )
        };
        let t = Arc::new(open(&env).unwrap());
        // Gets and full scans verify every block and succeed untampered.
        assert_eq!(t.get(b"key000100", 100).unwrap().unwrap().1, b"value-100");
        let mut it = t.iter();
        it.seek_to_first();
        let mut count = 0;
        while it.valid() {
            count += 1;
            it.next();
        }
        assert_eq!(count, 300);
        it.status().unwrap();
        // Flip a bit inside the first data block's contents: the scan
        // must die with IntegrityViolation.
        let mut raw = env.raw_content("t.sst").unwrap();
        raw[10] ^= 0x01;
        env.set_raw_content("t.sst", raw).unwrap();
        let t = Arc::new(open(&env).unwrap());
        let mut it = t.iter();
        it.seek_to_first();
        while it.valid() {
            it.next();
        }
        let err = it.status().unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation(_)), "got {err:?}");
    }

    #[test]
    fn legacy_table_under_hmac_mode_bumps_unprotected_gauge() {
        let env = MemEnv::new();
        build_table(&env, "t.sst", 100, 4096); // v1 file
        let stats = crate::statistics::Statistics::new();
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let t = Table::open_with_fetcher(
            file,
            3,
            BlockFetcher::new(None, 0),
            Some(stats.clone()),
            ReadIntegrity { key: [1u8; 32], expect_hmac: true, events: None },
        )
        .unwrap();
        assert_eq!(stats.snapshot().integrity_unprotected_files, 1);
        // Still fully readable (and CRC-checked, not MAC-checked).
        assert!(t.get(b"key000050", 100).unwrap().is_some());
        assert_eq!(stats.snapshot().integrity_checks, 0);
    }

    #[test]
    fn works_with_encrypted_file_layer() {
        use shield_crypto::Algorithm;
        use shield_kds::{DekResolver, KdsConfig, LocalKds, ServerId};

        let env = MemEnv::new();
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let resolver =
            Arc::new(DekResolver::new(kds, None, ServerId(1), Algorithm::Aes128Ctr));
        let cfg = crate::encryption::EncryptionConfig::new(resolver);
        let (file, dek_id) = cfg.new_writable(&env, "enc.sst", FileKind::Sst).unwrap();
        let mut b = TableBuilder::new(
            file,
            TableBuilderOptions { dek_id: Some(dek_id), ..TableBuilderOptions::default() },
        );
        for i in 0..200u32 {
            let ik = make_internal_key(format!("k{i:05}").as_bytes(), 3, ValueType::Value);
            b.add(&ik, b"secret-value").unwrap();
        }
        b.finish().unwrap();
        // Raw bytes on disk must not contain the key material.
        let raw = env.raw_content("enc.sst").unwrap();
        assert!(!raw.windows(6).any(|w| w == b"k00100"));
        assert!(!raw.windows(12).any(|w| w == b"secret-value"));
        // And reading through the decryption layer works.
        let file = cfg.open_random(&env, "enc.sst", FileKind::Sst).unwrap();
        let t = Arc::new(Table::open(file, 1, None).unwrap());
        assert_eq!(t.properties().dek_id, Some(dek_id));
        let hit = t.get(b"k00100", 100).unwrap().unwrap();
        assert_eq!(hit.1, b"secret-value");
    }
}
