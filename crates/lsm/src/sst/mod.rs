//! Sorted String Table (SST) files.
//!
//! Layout (after the optional encryption header, which the file layer
//! strips transparently):
//!
//! ```text
//! [data block 0]…[data block N]   prefix-compressed entries + restarts,
//!                                 each followed by a 5-byte trailer
//!                                 (compression tag + CRC32C)
//! [filter block]                  bloom filter over user keys
//! [properties block]              num_entries, key range, DEK-ID, …
//! [index block]                   last-key → block handle, one per block
//! [footer]                        fixed 60 bytes: three handles + magic
//! ```
//!
//! In SHIELD mode the whole file body is one CTR stream under the file's
//! unique DEK; the plaintext 64-byte header that precedes this layout
//! carries the DEK-ID (see [`crate::encryption`]).

pub mod block;
pub mod builder;
pub mod fetcher;
pub mod filter;
pub mod format;
pub mod reader;

pub use block::{Block, BlockBuilder, BlockIter};
pub use builder::TableBuilder;
pub use fetcher::{BlockFetcher, BlockRequest, FetchedBlock};
pub use filter::{BloomFilterBuilder, BloomFilterReader};
pub use format::{BlockHandle, Footer, TableProperties, FOOTER_LEN, TABLE_MAGIC};
pub use reader::{Table, TableIterator};
