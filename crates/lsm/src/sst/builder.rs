//! Builds an SST file from entries supplied in internal-key order.
//!
//! In SHIELD mode the `WritableFile` handed to the builder is already an
//! [`crate::encryption::EncryptedWritableFile`], so every byte written here
//! — blocks, filter, properties, index, footer — is encrypted in chunks
//! just before persistence, exactly the flush/compaction placement of §5.2.

use shield_crypto::{crc32c, crc32c_extend, crc32c_masked, DekId};
use shield_env::WritableFile;

use crate::error::Result;
use crate::integrity::{block_tag, CONTEXT_LEN};
use crate::sst::block::BlockBuilder;
use crate::sst::filter::BloomFilterBuilder;
use crate::sst::format::{
    BlockHandle, Footer, TableProperties, BLOCK_TRAILER_LEN, COMPRESSION_NONE,
    HMAC_BLOCK_TRAILER_LEN,
};
use crate::types::extract_user_key;

/// Tuning knobs for table construction.
#[derive(Clone, Debug)]
pub struct TableBuilderOptions {
    /// Target uncompressed data-block size (RocksDB default: 4096).
    pub block_size: usize,
    /// Restart interval within data blocks.
    pub restart_interval: usize,
    /// Bloom bits per key; 0 disables the filter.
    pub bloom_bits_per_key: usize,
    /// Recorded in the properties block when the file is encrypted.
    pub dek_id: Option<DekId>,
    /// MAC key for authenticated (format v2) tables: every block trailer
    /// gains a truncated HMAC tag and the footer carries a fresh random
    /// per-file context. `None` writes the classic CRC-only v1 format.
    pub mac_key: Option<[u8; 32]>,
}

impl Default for TableBuilderOptions {
    fn default() -> Self {
        TableBuilderOptions {
            block_size: 4096,
            restart_interval: 16,
            bloom_bits_per_key: 10,
            dek_id: None,
            mac_key: None,
        }
    }
}

/// Streaming SST writer.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    opts: TableBuilderOptions,
    data_block: BlockBuilder,
    /// (last key of block, handle) pairs for the index.
    index_entries: Vec<(Vec<u8>, BlockHandle)>,
    filter: BloomFilterBuilder,
    offset: u64,
    last_key: Vec<u8>,
    props: TableProperties,
    /// Per-file MAC context, minted at construction when `mac_key` is
    /// set; bound into every block tag and persisted in the v2 footer.
    context: [u8; CONTEXT_LEN],
    finished: bool,
}

impl TableBuilder {
    /// Starts building into `file`.
    #[must_use]
    pub fn new(file: Box<dyn WritableFile>, opts: TableBuilderOptions) -> Self {
        let filter = BloomFilterBuilder::new(opts.bloom_bits_per_key.max(1));
        let restart = opts.restart_interval;
        let dek_id = opts.dek_id;
        let mut context = [0u8; CONTEXT_LEN];
        if opts.mac_key.is_some() {
            shield_crypto::secure_random(&mut context);
        }
        TableBuilder {
            file,
            opts,
            data_block: BlockBuilder::new(restart),
            index_entries: Vec::new(),
            filter,
            offset: 0,
            last_key: Vec::new(),
            props: TableProperties { dek_id, ..TableProperties::default() },
            context,
            finished: false,
        }
    }

    /// Appends an entry; internal keys must be strictly increasing.
    pub fn add(&mut self, ikey: &[u8], value: &[u8]) -> Result<()> {
        debug_assert!(!self.finished);
        let user_key = extract_user_key(ikey);
        if self.props.num_entries == 0 {
            self.props.smallest_user_key = user_key.to_vec();
        }
        self.props.largest_user_key = user_key.to_vec();
        self.props.num_entries += 1;
        self.props.raw_key_bytes += user_key.len() as u64;
        self.props.raw_value_bytes += value.len() as u64;
        if self.opts.bloom_bits_per_key > 0 {
            // One filter probe key per distinct user key is enough, but
            // adding duplicates only costs a few redundant bits.
            self.filter.add_key(user_key);
        }
        self.data_block.add(ikey, value);
        self.last_key.clear();
        self.last_key.extend_from_slice(ikey);
        if self.data_block.size_estimate() >= self.opts.block_size {
            self.flush_data_block()?;
        }
        Ok(())
    }

    /// Number of entries added so far.
    #[must_use]
    pub fn num_entries(&self) -> u64 {
        self.props.num_entries
    }

    /// Current file offset (bytes emitted so far).
    #[must_use]
    pub fn file_size(&self) -> u64 {
        self.offset
    }

    fn flush_data_block(&mut self) -> Result<()> {
        if self.data_block.is_empty() {
            return Ok(());
        }
        let contents = self.data_block.finish();
        let handle = self.write_raw_block(&contents)?;
        self.index_entries.push((self.last_key.clone(), handle));
        self.props.num_data_blocks += 1;
        Ok(())
    }

    /// Writes block contents + trailer (5 bytes CRC-only, 21 bytes with
    /// an HMAC tag in authenticated tables); returns the handle.
    fn write_raw_block(&mut self, contents: &[u8]) -> Result<BlockHandle> {
        let handle = BlockHandle { offset: self.offset, size: contents.len() as u64 };
        self.file.append(contents)?;
        let mut trailer = [0u8; HMAC_BLOCK_TRAILER_LEN];
        trailer[0] = COMPRESSION_NONE;
        let crc = crc32c_masked(crc32c_extend(crc32c(contents), &[COMPRESSION_NONE]));
        trailer[1..BLOCK_TRAILER_LEN].copy_from_slice(&crc.to_le_bytes());
        let trailer_len = match &self.opts.mac_key {
            Some(key) => {
                let tag =
                    block_tag(key, &self.context, handle.offset, COMPRESSION_NONE, contents);
                trailer[BLOCK_TRAILER_LEN..].copy_from_slice(&tag);
                HMAC_BLOCK_TRAILER_LEN
            }
            None => BLOCK_TRAILER_LEN,
        };
        self.file.append(&trailer[..trailer_len])?;
        self.offset += (contents.len() + trailer_len) as u64;
        Ok(handle)
    }

    /// Writes filter, properties, index and footer, then flushes and syncs
    /// the file. Returns the table properties and the final file size.
    pub fn finish(mut self) -> Result<(TableProperties, u64)> {
        debug_assert!(!self.finished);
        self.finished = true;
        self.flush_data_block()?;

        let filter_handle = if self.opts.bloom_bits_per_key > 0 && self.filter.num_keys() > 0 {
            let body = self.filter.finish();
            self.write_raw_block(&body)?
        } else {
            BlockHandle::default()
        };
        let props_body = self.props.encode();
        let props_handle = self.write_raw_block(&props_body)?;

        let mut index_block = BlockBuilder::new(1);
        for (key, handle) in &self.index_entries {
            let mut v = Vec::with_capacity(16);
            handle.encode_varint(&mut v);
            index_block.add(key, &v);
        }
        let index_contents = index_block.finish();
        let index_handle = self.write_raw_block(&index_contents)?;

        let footer = match self.opts.mac_key {
            Some(_) => Footer::v2(filter_handle, props_handle, index_handle, self.context),
            None => Footer::v1(filter_handle, props_handle, index_handle),
        };
        let footer_bytes = footer.encode();
        self.file.append(&footer_bytes)?;
        self.offset += footer_bytes.len() as u64;
        self.file.flush()?;
        self.file.sync()?;
        Ok((self.props, self.offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};
    use shield_env::{Env, FileKind, MemEnv};

    #[test]
    fn builds_nonempty_file_with_footer_magic() {
        let env = MemEnv::new();
        let file = env.new_writable_file("t.sst", FileKind::Sst).unwrap();
        let mut b = TableBuilder::new(file, TableBuilderOptions::default());
        for i in 0..100u32 {
            let ik = make_internal_key(format!("k{i:04}").as_bytes(), 1, ValueType::Value);
            b.add(&ik, b"value").unwrap();
        }
        let (props, size) = b.finish().unwrap();
        assert_eq!(props.num_entries, 100);
        assert_eq!(props.smallest_user_key, b"k0000");
        assert_eq!(props.largest_user_key, b"k0099");
        assert!(props.num_data_blocks >= 1);
        let raw = env.raw_content("t.sst").unwrap();
        assert_eq!(raw.len() as u64, size);
        // Footer magic at the tail.
        let magic = u64::from_le_bytes(raw[raw.len() - 8..].try_into().unwrap());
        assert_eq!(magic, crate::sst::format::TABLE_MAGIC);
    }

    #[test]
    fn small_block_size_creates_many_blocks() {
        let env = MemEnv::new();
        let file = env.new_writable_file("t.sst", FileKind::Sst).unwrap();
        let opts = TableBuilderOptions { block_size: 64, ..TableBuilderOptions::default() };
        let mut b = TableBuilder::new(file, opts);
        for i in 0..50u32 {
            let ik = make_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value);
            b.add(&ik, b"some-value-payload").unwrap();
        }
        let (props, _) = b.finish().unwrap();
        assert!(props.num_data_blocks > 5, "blocks = {}", props.num_data_blocks);
    }

    #[test]
    fn mac_key_produces_v2_footer_and_tagged_trailers() {
        use crate::sst::format::{Footer, HMAC_BLOCK_TRAILER_LEN};
        let env = MemEnv::new();
        let file = env.new_writable_file("t.sst", FileKind::Sst).unwrap();
        let opts = TableBuilderOptions { mac_key: Some([7u8; 32]), ..Default::default() };
        let mut b = TableBuilder::new(file, opts);
        for i in 0..10u32 {
            let ik = make_internal_key(format!("k{i:04}").as_bytes(), 1, ValueType::Value);
            b.add(&ik, b"value").unwrap();
        }
        let context = b.context;
        let (_, size) = b.finish().unwrap();
        let raw = env.raw_content("t.sst").unwrap();
        assert_eq!(raw.len() as u64, size);
        let footer = Footer::decode_from_tail(&raw).unwrap();
        assert_eq!(footer.version, 2);
        assert_eq!(footer.context, context);
        assert_ne!(context, [0u8; super::CONTEXT_LEN], "context must be random");
        // The index block's stored tag recomputes from the raw bytes.
        let h = footer.index;
        let contents = &raw[h.offset as usize..(h.offset + h.size) as usize];
        let trailer = &raw[(h.offset + h.size) as usize
            ..(h.offset + h.size) as usize + HMAC_BLOCK_TRAILER_LEN];
        let expect = block_tag(&[7u8; 32], &context, h.offset, trailer[0], contents);
        assert_eq!(&trailer[BLOCK_TRAILER_LEN..], &expect[..]);
    }

    #[test]
    fn empty_table_is_valid() {
        let env = MemEnv::new();
        let file = env.new_writable_file("t.sst", FileKind::Sst).unwrap();
        let b = TableBuilder::new(file, TableBuilderOptions::default());
        let (props, size) = b.finish().unwrap();
        assert_eq!(props.num_entries, 0);
        assert!(size > 0); // properties + index + footer still exist
    }
}
