//! Prefix-compressed blocks with restart points (the LevelDB block format).
//!
//! Entry: `varint32 shared | varint32 non_shared | varint32 value_len |
//! key_delta | value`. Every `restart_interval` entries the full key is
//! stored (`shared == 0`) and its offset recorded in the restart array at
//! the block tail, enabling binary search.

use std::cmp::Ordering;

use bytes::Bytes;

use crate::types::internal_key_cmp;
use crate::varint::{get_varint32, put_varint32};

/// Builds one block.
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    count_since_restart: usize,
    last_key: Vec<u8>,
    entries: usize,
}

impl BlockBuilder {
    /// Creates a builder with the given restart interval.
    #[must_use]
    pub fn new(restart_interval: usize) -> Self {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            restart_interval: restart_interval.max(1),
            count_since_restart: 0,
            last_key: Vec::new(),
            entries: 0,
        }
    }

    /// Appends an entry; keys must arrive in strictly increasing internal
    /// key order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(
            self.entries == 0 || internal_key_cmp(&self.last_key, key) == Ordering::Less,
            "keys must be added in order"
        );
        let shared = if self.count_since_restart < self.restart_interval {
            common_prefix_len(&self.last_key, key)
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.count_since_restart = 0;
            0
        };
        put_varint32(&mut self.buf, shared as u32);
        put_varint32(&mut self.buf, (key.len() - shared) as u32);
        put_varint32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.count_since_restart += 1;
        self.entries += 1;
    }

    /// Current encoded size (including the restart array).
    #[must_use]
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Number of entries added.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// True if no entries were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Finalizes and returns the block contents, resetting the builder.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buf);
        for r in &self.restarts {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&(self.restarts.len() as u32).to_le_bytes());
        self.restarts.clear();
        self.restarts.push(0);
        self.count_since_restart = 0;
        self.last_key.clear();
        self.entries = 0;
        out
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// A parsed, immutable block.
pub struct Block {
    data: Bytes,
    restarts_offset: usize,
    num_restarts: usize,
}

impl Block {
    /// Wraps block contents produced by [`BlockBuilder::finish`].
    ///
    /// Malformed tails yield an empty block rather than a panic; callers
    /// validate CRCs before constructing blocks, so this is defensive.
    #[must_use]
    pub fn from_raw(data: Bytes) -> Self {
        if data.len() < 4 {
            return Block { data, restarts_offset: 0, num_restarts: 0 };
        }
        let num_restarts =
            u32::from_le_bytes(crate::varint::fixed(&data[data.len() - 4..])) as usize;
        let needed = 4 + num_restarts * 4;
        if needed > data.len() {
            return Block { data, restarts_offset: 0, num_restarts: 0 };
        }
        let restarts_offset = data.len() - needed;
        Block { data, restarts_offset, num_restarts }
    }

    /// Wraps bytes that are *not* in the block entry format (e.g. a bloom
    /// filter body) so they can live in the block cache. The result has no
    /// parsed restarts and iterates as empty; use [`Block::raw_bytes`] to
    /// get the payload back.
    #[must_use]
    pub fn from_raw_opaque(data: Bytes) -> Self {
        Block { restarts_offset: data.len(), num_restarts: 0, data }
    }

    /// The underlying bytes (cheap clone sharing the same allocation).
    #[must_use]
    pub fn raw_bytes(&self) -> &Bytes {
        &self.data
    }

    /// Byte size of the block contents.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn restart_point(&self, i: usize) -> usize {
        let off = self.restarts_offset + 4 * i;
        u32::from_le_bytes(crate::varint::fixed(&self.data[off..off + 4])) as usize
    }

    /// An iterator positioned before the first entry.
    #[must_use]
    pub fn iter(self: &std::sync::Arc<Self>) -> BlockIter {
        BlockIter {
            block: self.clone(),
            offset: 0,
            key: Vec::new(),
            value_range: (0, 0),
            valid: false,
        }
    }
}

/// Iterator over a block's entries.
pub struct BlockIter {
    block: std::sync::Arc<Block>,
    /// Offset of the *next* entry to parse.
    offset: usize,
    key: Vec<u8>,
    value_range: (usize, usize),
    valid: bool,
}

impl BlockIter {
    /// True if positioned on an entry.
    #[must_use]
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// The current full key.
    #[must_use]
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.block.data[self.value_range.0..self.value_range.1]
    }

    /// Positions on the first entry.
    pub fn seek_to_first(&mut self) {
        self.offset = 0;
        self.key.clear();
        self.valid = false;
        self.parse_next();
    }

    /// Positions on the first entry with key >= `target` (internal-key
    /// order).
    pub fn seek(&mut self, target: &[u8]) {
        if self.block.num_restarts == 0 {
            self.valid = false;
            return;
        }
        // Binary search the restart array for the last restart whose key
        // is < target.
        let (mut lo, mut hi) = (0usize, self.block.num_restarts - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let key = self.restart_key(mid);
            if internal_key_cmp(&key, target) == Ordering::Less {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        self.offset = self.block.restart_point(lo);
        self.key.clear();
        self.valid = false;
        // Linear scan forward.
        loop {
            if !self.parse_next() {
                return;
            }
            if internal_key_cmp(&self.key, target) != Ordering::Less {
                return;
            }
        }
    }

    /// Advances to the next entry.
    pub fn next(&mut self) {
        debug_assert!(self.valid);
        self.parse_next();
    }

    /// Decodes the full key at restart point `i` (shared is 0 there).
    /// Malformed entries — reachable from hostile blocks whose restart
    /// array points at garbage — yield an empty key instead of panicking;
    /// the subsequent linear scan re-validates every entry it lands on.
    fn restart_key(&self, i: usize) -> Vec<u8> {
        let mut off = self.block.restart_point(i);
        let data = &self.block.data[..self.block.restarts_offset];
        let mut varint = || -> Option<u32> {
            let (v, n) = get_varint32(data.get(off..)?)?;
            off += n;
            Some(v)
        };
        let Some(_shared) = varint() else { return Vec::new() };
        let Some(non_shared) = varint() else { return Vec::new() };
        let Some(_vlen) = varint() else { return Vec::new() };
        let end = off.saturating_add(non_shared as usize);
        data.get(off..end).map(<[u8]>::to_vec).unwrap_or_default()
    }

    /// Parses the entry at `self.offset`; false at end of block.
    fn parse_next(&mut self) -> bool {
        let data = &self.block.data[..self.block.restarts_offset];
        if self.offset >= data.len() {
            self.valid = false;
            return false;
        }
        let mut off = self.offset;
        let Some((shared, n)) = get_varint32(&data[off..]) else {
            self.valid = false;
            return false;
        };
        off += n;
        let Some((non_shared, n)) = get_varint32(&data[off..]) else {
            self.valid = false;
            return false;
        };
        off += n;
        let Some((vlen, n)) = get_varint32(&data[off..]) else {
            self.valid = false;
            return false;
        };
        off += n;
        let (shared, non_shared, vlen) = (shared as usize, non_shared as usize, vlen as usize);
        if off + non_shared + vlen > data.len() || shared > self.key.len() {
            self.valid = false;
            return false;
        }
        self.key.truncate(shared);
        self.key.extend_from_slice(&data[off..off + non_shared]);
        self.value_range = (off + non_shared, off + non_shared + vlen);
        self.offset = off + non_shared + vlen;
        self.valid = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};
    use std::sync::Arc;

    fn ik(k: &[u8], seq: u64) -> Vec<u8> {
        make_internal_key(k, seq, ValueType::Value)
    }

    fn build(entries: &[(Vec<u8>, Vec<u8>)], restart_interval: usize) -> Arc<Block> {
        let mut b = BlockBuilder::new(restart_interval);
        for (k, v) in entries {
            b.add(k, v);
        }
        Arc::new(Block::from_raw(Bytes::from(b.finish())))
    }

    fn entries(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| (ik(format!("key{i:05}").as_bytes(), 1), format!("value-{i}").into_bytes()))
            .collect()
    }

    #[test]
    fn roundtrip_all_entries() {
        for restart in [1, 2, 16] {
            let es = entries(100);
            let block = build(&es, restart);
            let mut it = block.iter();
            it.seek_to_first();
            for (k, v) in &es {
                assert!(it.valid());
                assert_eq!(it.key(), &k[..]);
                assert_eq!(it.value(), &v[..]);
                it.next();
            }
            assert!(!it.valid());
        }
    }

    #[test]
    fn seek_exact_and_between() {
        let es = entries(100);
        let block = build(&es, 16);
        let mut it = block.iter();
        // Exact hit.
        it.seek(&ik(b"key00042", 1));
        assert!(it.valid());
        assert_eq!(it.key(), &es[42].0[..]);
        // Between keys: lands on the next one.
        it.seek(&ik(b"key00042x", 1));
        assert!(it.valid());
        assert_eq!(it.key(), &es[43].0[..]);
        // Before the first.
        it.seek(&ik(b"a", 1));
        assert!(it.valid());
        assert_eq!(it.key(), &es[0].0[..]);
        // Past the last.
        it.seek(&ik(b"zzz", 1));
        assert!(!it.valid());
    }

    #[test]
    fn seek_respects_sequence_order() {
        // Same user key, several sequences: newest sorts first.
        let mut b = BlockBuilder::new(16);
        b.add(&ik(b"k", 9), b"v9");
        b.add(&ik(b"k", 5), b"v5");
        b.add(&ik(b"k", 1), b"v1");
        let block = Arc::new(Block::from_raw(Bytes::from(b.finish())));
        let mut it = block.iter();
        // Looking up at seq 6 must land on seq-5 entry.
        it.seek(&crate::types::make_lookup_key(b"k", 6));
        assert!(it.valid());
        assert_eq!(it.value(), b"v5");
    }

    #[test]
    fn empty_block() {
        let mut b = BlockBuilder::new(16);
        let block = Arc::new(Block::from_raw(Bytes::from(b.finish())));
        let mut it = block.iter();
        it.seek_to_first();
        assert!(!it.valid());
        it.seek(&ik(b"x", 1));
        assert!(!it.valid());
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new(16);
        b.add(&ik(b"a", 1), b"1");
        let first = b.finish();
        b.add(&ik(b"a", 1), b"1");
        let second = b.finish();
        assert_eq!(first, second);
    }

    #[test]
    fn prefix_compression_shrinks_output() {
        let shared: Vec<(Vec<u8>, Vec<u8>)> = (0..64)
            .map(|i| (ik(format!("commonprefix/{i:04}").as_bytes(), 1), b"v".to_vec()))
            .collect();
        let compressed = build(&shared, 16);
        let uncompressed = build(&shared, 1);
        assert!(compressed.size() < uncompressed.size());
    }

    #[test]
    fn malformed_block_yields_empty_iter() {
        let block = Arc::new(Block::from_raw(Bytes::from_static(b"xx")));
        let mut it = block.iter();
        it.seek_to_first();
        assert!(!it.valid());
    }

    #[test]
    fn hostile_restart_entries_do_not_panic_on_seek() {
        // A restart array whose entries point at garbage: truncated
        // varints, offsets past the entry region, lengths overrunning the
        // block. `seek` binary-searches via `restart_key` and must fail
        // gracefully (no panic, iterator invalid), not trust the offsets.
        let hostile: &[&[u8]] = &[
            // restart[0]=0 over a single 0xff byte (truncated varint).
            &[0xff, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00],
            // entry claims non_shared=200 with 1 byte of data behind it.
            &[0x00, 0xc8, 0x01, 0x61, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00],
            // restart offset points past the entry region.
            &[0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00],
        ];
        for raw in hostile {
            let block = Arc::new(Block::from_raw(Bytes::copy_from_slice(raw)));
            let mut it = block.iter();
            it.seek(&ik(b"probe", 1));
            let _ = it.valid();
            it.seek_to_first();
            while it.valid() {
                let (_k, _v) = (it.key().to_vec(), it.value().to_vec());
                it.next();
            }
        }
    }
}
