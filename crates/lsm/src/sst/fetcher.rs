//! The unified read path for SST blocks: cache lookup → env read →
//! CRC verify → block construction, behind one choke point.
//!
//! Before this module, the cache→read→verify→decrypt sequence was
//! duplicated across `sst/reader.rs` (data blocks), the table-open path
//! (index/filter/properties), and implicitly in `version/table_cache.rs`.
//! Every reader now goes through [`BlockFetcher::fetch`], which adds two
//! behaviors the scattered code could not provide:
//!
//! - **Single-flight miss coalescing.** N threads missing the same
//!   `(table_id, offset)` perform one underlying read (and, for encrypted
//!   files, one decrypt — the decryption wrapper sits below the file
//!   handle this module reads through). Late arrivals park on the
//!   in-flight entry's condvar and share the leader's result, including
//!   its error. Under a disaggregated env's ~500 µs RTT this turns a
//!   thundering herd on a hot cold block into a single round trip.
//! - **Readahead.** [`BlockFetcher::prefetch`] queues bounded prefetch
//!   requests served by a small worker pool; workers run the same
//!   single-flight fetch and drop the pin immediately, leaving the block
//!   resident for the iterator that is about to need it. Blocks inserted
//!   this way are flagged so the first hit credits `readahead_useful`;
//!   a foreground read that *joins* a still-in-flight prefetch claims
//!   the same credit, so usefulness accounting survives the race between
//!   the iterator and the worker.
//! - **Batched reads.** [`BlockFetcher::get_many`] partitions a batch of
//!   wanted blocks into cache hits, joinable in-flight reads, and leader
//!   reads; the leader reads are submitted as `read_at_many` windows of
//!   at most the configured in-flight depth, and each completed window
//!   is verified while the next window's payload is still in flight.
//!
//! Decryption itself stays in [`crate::encryption`]'s file wrapper: a
//! fetch against an encrypted table reads through
//! `EncryptedRandomAccessFile`, so coalescing the read coalesces the
//! keystream work too.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use bytes::Bytes;
use shield_core::{perf, trace, PerfCounter, PerfMetric};
use shield_crypto::{crc32c, crc32c_extend, crc32c_unmask};
use shield_env::{RandomAccessFile, ReadQueue, ReadRequest};

use crate::cache::{BlockCache, BlockKind, CacheHandle, CacheKey};
use crate::error::{Error, Result};
use crate::integrity::IntegrityCtx;
use crate::sst::block::Block;
use crate::sst::format::{BlockHandle, BLOCK_TRAILER_LEN, HMAC_BLOCK_TRAILER_LEN};

/// Upper bound on queued prefetch requests; beyond it, readahead sheds
/// load instead of buffering unbounded file handles.
const PREFETCH_QUEUE_CAP: usize = 64;
/// Prefetch worker threads (enough to overlap several remote RTTs).
const PREFETCH_WORKERS: usize = 4;
/// Upper bound on a single block read. Block handles come from on-disk
/// index/footer bytes, so a hostile file could otherwise name a
/// multi-gigabyte "block" and turn one `read_at` into an OOM
/// (allocation-by-length-field, the SecureDekCache bug pattern).
const MAX_BLOCK_LEN: usize = 1 << 26; // 64 MiB
/// Default bounded in-flight depth for batched reads
/// ([`crate::Options::max_inflight_reads`] overrides it per engine).
pub const DEFAULT_INFLIGHT_READS: usize = 16;

/// A block obtained through the fetcher. `Cached` keeps the entry pinned
/// (charged, not evictable) until dropped; `Uncached` is a plain
/// reference for bypassed or cache-less reads.
pub enum FetchedBlock {
    /// Resident in the block cache; the handle pins it.
    Cached(CacheHandle),
    /// Not admitted to (or not backed by) a cache.
    Uncached(Arc<Block>),
}

impl FetchedBlock {
    /// The block itself.
    #[must_use]
    pub fn block(&self) -> &Arc<Block> {
        match self {
            FetchedBlock::Cached(h) => h.block(),
            FetchedBlock::Uncached(b) => b,
        }
    }
}

/// One in-flight read; late missers wait on `cv` for `done`.
struct Flight {
    done: Mutex<Option<Result<Arc<Block>>>>,
    cv: Condvar,
    /// True when a prefetch worker initiated this read.
    prefetch: bool,
    /// Set by the first foreground read that joins a prefetch-initiated
    /// flight: the prefetch was useful even though the block never got
    /// the chance to serve a cache hit. Claimed at most once, and the
    /// leader skips the cache-entry `prefetched` flag once claimed so the
    /// first later hit cannot credit the same prefetch twice.
    useful_claimed: AtomicBool,
}

impl Flight {
    fn new(prefetch: bool) -> Self {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
            prefetch,
            useful_claimed: AtomicBool::new(false),
        }
    }
}

/// State shared between foreground fetches and prefetch workers.
struct FetcherCore {
    cache: Option<Arc<BlockCache>>,
    inflight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

struct PrefetchRequest {
    file: Arc<dyn RandomAccessFile>,
    table_id: u64,
    handle: BlockHandle,
    /// Owned verification context for v2 tables (the worker outlives the
    /// caller's borrow).
    integrity: Option<IntegrityCtx>,
}

struct PrefetchPool {
    queue: Mutex<VecDeque<PrefetchRequest>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// One block wanted by a batched fetch ([`BlockFetcher::get_many`]).
#[derive(Clone, Copy, Debug)]
pub struct BlockRequest {
    /// Where the block lives in the file.
    pub handle: BlockHandle,
    /// What kind of block it is (sets cache priority and parse mode).
    pub kind: BlockKind,
}

/// The single entry point for reading SST blocks.
pub struct BlockFetcher {
    core: Arc<FetcherCore>,
    readahead_blocks: usize,
    inflight_depth: usize,
    pool: Option<Arc<PrefetchPool>>,
}

impl BlockFetcher {
    /// Creates a fetcher over `cache` (or none). `readahead_blocks` is the
    /// default prefetch depth for iterators; 0 disables readahead and its
    /// worker pool. Readahead also requires a cache — prefetched blocks
    /// have nowhere to land without one. Batched reads use the default
    /// in-flight depth; [`BlockFetcher::with_depth`] overrides it.
    #[must_use]
    pub fn new(cache: Option<Arc<BlockCache>>, readahead_blocks: usize) -> Arc<Self> {
        Self::with_depth(cache, readahead_blocks, DEFAULT_INFLIGHT_READS)
    }

    /// [`BlockFetcher::new`] with an explicit bounded in-flight depth for
    /// batched reads (clamped to ≥ 1).
    #[must_use]
    pub fn with_depth(
        cache: Option<Arc<BlockCache>>,
        readahead_blocks: usize,
        inflight_depth: usize,
    ) -> Arc<Self> {
        let core = Arc::new(FetcherCore { cache, inflight: Mutex::new(HashMap::new()) });
        let pool = (readahead_blocks > 0 && core.cache.is_some()).then(|| {
            let pool = Arc::new(PrefetchPool {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            });
            for _ in 0..PREFETCH_WORKERS {
                let pool = pool.clone();
                let core = core.clone();
                std::thread::spawn(move || prefetch_worker(&pool, &core));
            }
            pool
        });
        Arc::new(BlockFetcher {
            core,
            readahead_blocks,
            inflight_depth: inflight_depth.max(1),
            pool,
        })
    }

    /// The configured default readahead depth for iterators.
    #[must_use]
    pub fn readahead_blocks(&self) -> usize {
        self.readahead_blocks
    }

    /// The bounded in-flight depth used by batched reads.
    #[must_use]
    pub fn inflight_depth(&self) -> usize {
        self.inflight_depth
    }

    /// The cache this fetcher fills, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&Arc<BlockCache>> {
        self.core.cache.as_ref()
    }

    /// Fetches one verified block: cache lookup, then a single-flight
    /// read. `fill_cache = false` skips both cache lookup and admission
    /// (one-shot reads that should not disturb residency). `integrity`
    /// must be `Some` exactly for v2 (HMAC-tagged) tables; every cache
    /// miss then verifies the block's tag before the bytes are trusted.
    pub fn fetch(
        &self,
        file: &Arc<dyn RandomAccessFile>,
        table_id: u64,
        handle: BlockHandle,
        kind: BlockKind,
        fill_cache: bool,
        integrity: Option<&IntegrityCtx>,
    ) -> Result<FetchedBlock> {
        let key = (table_id, handle.offset);
        if fill_cache {
            if let Some(cache) = &self.core.cache {
                let t = perf::timer();
                let cached = cache.lookup(&key, kind);
                perf::add_elapsed(PerfMetric::CacheLookup, t);
                if let Some(h) = cached {
                    return Ok(FetchedBlock::Cached(h));
                }
            }
        }
        self.core.fetch_miss(file, key, handle, kind, fill_cache, false, integrity)
    }

    /// Fetches a batch of blocks from one table file, returning one
    /// result per request in request order.
    ///
    /// The batch is partitioned three ways: cache hits are served
    /// immediately, misses another thread is already reading are joined
    /// (single-flight), and the remaining leader reads are submitted as
    /// `read_at_many` windows of at most [`Self::inflight_depth`]
    /// requests. While a window's payload is still in flight (a single
    /// round trip on a remote env), the previous window's blocks are
    /// MAC-verified, CRC-checked, and admitted to the cache — verify
    /// overlaps transfer. Every slot fails independently: a hostile
    /// handle, an injected fault, or a corrupt block errors its own
    /// result and never poisons a neighbor.
    pub fn get_many(
        &self,
        file: &Arc<dyn RandomAccessFile>,
        table_id: u64,
        requests: &[BlockRequest],
        fill_cache: bool,
        integrity: Option<&IntegrityCtx>,
    ) -> Vec<Result<FetchedBlock>> {
        let mut batch_span = trace::span("fetch_batch");
        batch_span.attr("requests", requests.len() as u64);
        let mut out: Vec<Option<Result<FetchedBlock>>> = Vec::with_capacity(requests.len());
        out.resize_with(requests.len(), || None);

        // Phase 1: cache hits.
        let mut misses: Vec<usize> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            if fill_cache {
                if let Some(cache) = &self.core.cache {
                    let t = perf::timer();
                    let cached = cache.lookup(&(table_id, req.handle.offset), req.kind);
                    perf::add_elapsed(PerfMetric::CacheLookup, t);
                    if let Some(h) = cached {
                        out[i] = Some(Ok(FetchedBlock::Cached(h)));
                        continue;
                    }
                }
            }
            misses.push(i);
        }

        // Phase 2: one pass over the in-flight map splits the misses into
        // joiners (another thread is reading that block) and leaders (this
        // batch will). A duplicate handle within the batch joins the
        // leader slot created moments earlier; leaders publish before
        // joiners wait, so the self-join cannot deadlock.
        let mut joiners: Vec<(usize, Arc<Flight>)> = Vec::new();
        let mut leaders: Vec<(usize, Arc<Flight>)> = Vec::new();
        match lock_inflight(&self.core.inflight) {
            Ok(mut map) => {
                for &i in &misses {
                    let key = (table_id, requests[i].handle.offset);
                    match map.get(&key) {
                        Some(f) => joiners.push((i, f.clone())),
                        None => {
                            let f = Arc::new(Flight::new(false));
                            map.insert(key, f.clone());
                            leaders.push((i, f));
                        }
                    }
                }
            }
            Err(e) => {
                for &i in &misses {
                    out[i] = Some(Err(e.clone()));
                }
                return out.into_iter().map(|o| o.expect("slot resolved")).collect();
            }
        }

        // Phase 3: hostile-length checks fail their own slot before any
        // I/O; the survivors become the windowed leader reads.
        let mut ready: Vec<(usize, Arc<Flight>, ReadRequest)> = Vec::new();
        for (i, flight) in leaders {
            let req = requests[i];
            match batch_read_plan(req.handle, integrity) {
                Ok(plan) => ready.push((i, flight, plan)),
                Err(e) => {
                    self.core.publish((table_id, req.handle.offset), &flight, Err(e.clone()));
                    out[i] = Some(Err(e));
                }
            }
        }
        if !ready.is_empty() {
            let queue = ReadQueue::new(self.inflight_depth);
            let read_reqs: Vec<ReadRequest> = ready.iter().map(|r| r.2).collect();
            let windows: Vec<std::ops::Range<usize>> = (0..ready.len())
                .step_by(queue.depth())
                .map(|start| start..(start + queue.depth()).min(ready.len()))
                .collect();
            if let Some(cache) = &self.core.cache {
                let c = cache.counters();
                c.batched_reads.fetch_add(windows.len() as u64, Ordering::Relaxed);
                c.batch_read_requests.fetch_add(ready.len() as u64, Ordering::Relaxed);
            }
            batch_span.attr("windows", windows.len() as u64);
            std::thread::scope(|s| {
                let spawn_window = |range: std::ops::Range<usize>| {
                    let file = file.clone();
                    let queue = &queue;
                    let reqs = &read_reqs;
                    s.spawn(move || queue.submit_window(file.as_ref(), &reqs[range]))
                };
                let mut widx = 0;
                let mut inflight = spawn_window(windows[0].clone());
                loop {
                    // Kick off the next window before verifying this one:
                    // its transfer rides concurrently with our MAC/CRC
                    // work below.
                    let next = (widx + 1 < windows.len())
                        .then(|| spawn_window(windows[widx + 1].clone()));
                    // The window span lives on this (coordinator) thread,
                    // not the worker: joins are sequential here, so the
                    // per-window durations always sum to at most the op's
                    // wall time, and it needs no cross-thread context.
                    let raws: Vec<crate::error::Result<Bytes>> = {
                        let mut span = trace::span("read_window");
                        span.attr("blocks", (windows[widx].end - windows[widx].start) as u64);
                        let t = perf::timer();
                        let raws = match inflight.join() {
                            Ok(r) => r.into_iter().map(|x| x.map_err(Error::from)).collect(),
                            Err(_) => windows[widx]
                                .clone()
                                .map(|_| {
                                    Err(Error::Corruption("batch read worker panicked".into()))
                                })
                                .collect(),
                        };
                        perf::add_elapsed(PerfMetric::IoBatchWait, t);
                        raws
                    };
                    let mut vspan = trace::span("verify_window");
                    vspan.attr("blocks", (windows[widx].end - windows[widx].start) as u64);
                    for (slot, raw) in windows[widx].clone().zip(raws) {
                        let (i, flight, _) = &ready[slot];
                        let req = requests[*i];
                        let key = (table_id, req.handle.offset);
                        perf::incr(PerfCounter::BlocksRead, 1);
                        let result = raw
                            .and_then(|bytes| split_verified(&bytes, req.handle, integrity))
                            .map(|contents| {
                                Arc::new(match req.kind {
                                    BlockKind::Filter => Block::from_raw_opaque(contents),
                                    BlockKind::Data | BlockKind::Index => {
                                        Block::from_raw(contents)
                                    }
                                })
                            });
                        let outcome = match &result {
                            Ok(block) => {
                                let admitted = if fill_cache {
                                    self.core.cache.as_ref().and_then(|c| {
                                        c.insert(key, block, block.size(), req.kind, false)
                                    })
                                } else {
                                    None
                                };
                                Ok(match admitted {
                                    Some(h) => FetchedBlock::Cached(h),
                                    None => FetchedBlock::Uncached(block.clone()),
                                })
                            }
                            Err(e) => Err(e.clone()),
                        };
                        self.core.publish(key, flight, result);
                        out[*i] = Some(outcome);
                    }
                    match next {
                        Some(h) => {
                            widx += 1;
                            inflight = h;
                        }
                        None => break,
                    }
                }
            });
        }

        // Phase 4: collect the joined flights (all our own leaders have
        // published by now, so self-joins resolve immediately).
        for (i, flight) in joiners {
            out[i] = Some(self.core.join_flight(&flight, false).map(FetchedBlock::Uncached));
        }
        out.into_iter().map(|o| o.expect("every batch slot resolved")).collect()
    }

    /// Queues background prefetch of `handle` if it is not already
    /// resident. Best-effort: a full queue or disabled readahead drops the
    /// request, and worker errors are swallowed (the foreground read will
    /// surface them if the block is ever actually needed).
    /// `readahead_issued` is credited only when a worker actually leads
    /// the read, so shed, superseded, and duplicate requests never count.
    pub fn prefetch(
        &self,
        file: &Arc<dyn RandomAccessFile>,
        table_id: u64,
        handle: BlockHandle,
        integrity: Option<&IntegrityCtx>,
    ) {
        let Some(pool) = &self.pool else { return };
        let Some(cache) = &self.core.cache else { return };
        let key = (table_id, handle.offset);
        // A poisoned in-flight map reads as "not in flight": prefetch is
        // best-effort and must never propagate another thread's panic.
        let in_flight =
            self.core.inflight.lock().map(|g| g.contains_key(&key)).unwrap_or(false);
        if cache.contains(&key) || in_flight {
            return;
        }
        {
            let mut q = match pool.queue.lock() {
                Ok(q) => q,
                Err(_) => return,
            };
            if q.len() >= PREFETCH_QUEUE_CAP {
                return;
            }
            q.push_back(PrefetchRequest {
                file: file.clone(),
                table_id,
                handle,
                integrity: integrity.cloned(),
            });
        }
        pool.cv.notify_one();
    }
}

impl Drop for BlockFetcher {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            pool.shutdown.store(true, Ordering::SeqCst);
            pool.cv.notify_all();
        }
    }
}

impl FetcherCore {
    /// The miss path: join an in-flight read for `key` or become its
    /// leader. Exactly one thread per concurrent miss group performs the
    /// verified read (and thus the decrypt below it).
    #[allow(clippy::too_many_arguments)]
    fn fetch_miss(
        &self,
        file: &Arc<dyn RandomAccessFile>,
        key: CacheKey,
        handle: BlockHandle,
        kind: BlockKind,
        fill_cache: bool,
        prefetched: bool,
        integrity: Option<&IntegrityCtx>,
    ) -> Result<FetchedBlock> {
        let (flight, is_leader) = {
            let mut map = lock_inflight(&self.inflight)?;
            match map.get(&key) {
                Some(flight) => (flight.clone(), false),
                None => {
                    let flight = Arc::new(Flight::new(prefetched));
                    map.insert(key, flight.clone());
                    (flight, true)
                }
            }
        };

        if !is_leader {
            // Another thread is already reading this block: wait for it.
            return self.join_flight(&flight, prefetched).map(FetchedBlock::Uncached);
        }

        // Leader: do the read, publish the result, then retire the flight.
        if prefetched {
            // A prefetch counts as issued only once it actually leads a
            // read; shed, superseded, and duplicate requests never get
            // here, so `readahead_issued` measures prefetches that did
            // real I/O.
            if let Some(cache) = &self.cache {
                cache.counters().readahead_issued.fetch_add(1, Ordering::Relaxed);
            }
        }
        let result = {
            let mut span = trace::span("read_block");
            span.attr("offset", handle.offset);
            span.attr("len", handle.size);
            read_block(file.as_ref(), handle, kind, integrity)
        };
        let out = match &result {
            Ok(block) => {
                let admitted = if fill_cache {
                    // Skip the cache entry's `prefetched` flag if a joiner
                    // already claimed this prefetch as useful — otherwise
                    // the first hit would credit it a second time.
                    let flag = prefetched && !flight.useful_claimed.load(Ordering::Relaxed);
                    self.cache
                        .as_ref()
                        .and_then(|cache| cache.insert(key, block, block.size(), kind, flag))
                } else {
                    None
                };
                Ok(match admitted {
                    Some(h) => FetchedBlock::Cached(h),
                    None => FetchedBlock::Uncached(block.clone()),
                })
            }
            Err(e) => Err(e.clone()),
        };
        self.publish(key, &flight, result);
        out
    }

    /// Waits on another thread's in-flight read and shares its result.
    /// A foreground join of a prefetch-initiated flight claims the
    /// prefetch as useful (exactly once).
    fn join_flight(&self, flight: &Flight, prefetched: bool) -> Result<Arc<Block>> {
        let _span = trace::span("singleflight_wait");
        if let Some(cache) = &self.cache {
            cache.counters().singleflight_waits.fetch_add(1, Ordering::Relaxed);
        }
        perf::incr(PerfCounter::SingleflightWaits, 1);
        if flight.prefetch
            && !prefetched
            && !flight.useful_claimed.swap(true, Ordering::Relaxed)
        {
            if let Some(cache) = &self.cache {
                cache.counters().readahead_useful.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut done = flight
            .done
            .lock()
            .map_err(|_| Error::Corruption("in-flight block fetch poisoned".into()))?;
        while done.is_none() {
            done = flight
                .cv
                .wait(done)
                .map_err(|_| Error::Corruption("in-flight block fetch poisoned".into()))?;
        }
        match done.clone() {
            Some(Ok(block)) => Ok(block),
            Some(Err(e)) => Err(e),
            None => unreachable!("loop exits only when done is Some"),
        }
    }

    /// Retires `key`'s flight from the in-flight map and wakes its
    /// joiners with `result`.
    fn publish(&self, key: CacheKey, flight: &Arc<Flight>, result: Result<Arc<Block>>) {
        if let Ok(mut map) = self.inflight.lock() {
            map.remove(&key);
        }
        if let Ok(mut done) = flight.done.lock() {
            *done = Some(result);
        }
        flight.cv.notify_all();
    }
}

fn lock_inflight(
    m: &Mutex<HashMap<CacheKey, Arc<Flight>>>,
) -> Result<std::sync::MutexGuard<'_, HashMap<CacheKey, Arc<Flight>>>> {
    m.lock().map_err(|_| Error::Corruption("in-flight block table poisoned".into()))
}

fn prefetch_worker(pool: &PrefetchPool, core: &FetcherCore) {
    loop {
        let req = {
            let Ok(mut q) = pool.queue.lock() else { return };
            loop {
                if pool.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(req) = q.pop_front() {
                    break req;
                }
                q = match pool.cv.wait(q) {
                    Ok(q) => q,
                    Err(_) => return,
                };
            }
        };
        let key = (req.table_id, req.handle.offset);
        // Re-check residency *and* in-flight status at execution time: if
        // the foreground got here first (resident or mid-read), this
        // prefetch is moot — skipping before fetch_miss keeps the worker
        // from parking on a foreground flight and keeps the request out
        // of `readahead_issued`.
        let in_flight = core.inflight.lock().map(|g| g.contains_key(&key)).unwrap_or(false);
        if in_flight || core.cache.as_ref().is_some_and(|c| c.contains(&key)) {
            continue;
        }
        // Fill the cache and release the pin at once; errors are the
        // foreground's to report if it ever reads this block for real.
        let _ = core.fetch_miss(
            &req.file,
            key,
            req.handle,
            BlockKind::Data,
            true,
            true,
            req.integrity.as_ref(),
        );
    }
}

/// Reads `handle`'s bytes, verifies the trailer, and parses the block
/// (opaque wrapping for filter payloads, which are not in entry format).
fn read_block(
    file: &dyn RandomAccessFile,
    handle: BlockHandle,
    kind: BlockKind,
    integrity: Option<&IntegrityCtx>,
) -> Result<Arc<Block>> {
    let raw = read_verified(file, handle, integrity)?;
    Ok(Arc::new(match kind {
        BlockKind::Filter => Block::from_raw_opaque(raw),
        BlockKind::Data | BlockKind::Index => Block::from_raw(raw),
    }))
}

/// Reads a block's contents and verifies its trailer. This is the one
/// place raw SST bytes become trusted plaintext; everything above works
/// on verified blocks.
///
/// With `integrity = None` (v1 tables) the trailer is 5 bytes
/// (compression tag + masked CRC32C); with `Some` (v2 tables) it is 21
/// bytes and the HMAC tag is verified **first**: a forged block fails as
/// [`Error::IntegrityViolation`] even when the attacker fixed up the CRC
/// (trivial — CRC32C is keyless), and garbled-plaintext splices under
/// encryption classify as tampering rather than generic corruption.
pub fn read_verified(
    file: &dyn RandomAccessFile,
    handle: BlockHandle,
    integrity: Option<&IntegrityCtx>,
) -> Result<Bytes> {
    perf::incr(PerfCounter::BlocksRead, 1);
    let plan = batch_read_plan(handle, integrity)?;
    let raw = file.read_at(plan.offset, plan.len)?;
    split_verified(&raw, handle, integrity)
}

/// Validates a block handle's hostile length fields and returns the raw
/// read covering contents + trailer. This is the pre-I/O half of
/// [`read_verified`]; the batched path runs it per slot before any read
/// is submitted.
fn batch_read_plan(handle: BlockHandle, integrity: Option<&IntegrityCtx>) -> Result<ReadRequest> {
    let trailer_len = if integrity.is_some() { HMAC_BLOCK_TRAILER_LEN } else { BLOCK_TRAILER_LEN };
    // `handle` decodes from on-disk bytes: treat its size as hostile.
    // Checked arithmetic plus a hard cap stop a forged index entry from
    // requesting an absurd allocation or wrapping the length math.
    let size = usize::try_from(handle.size)
        .ok()
        .filter(|s| *s <= MAX_BLOCK_LEN)
        .ok_or_else(|| {
            Error::Corruption(format!("implausible block length {}", handle.size))
        })?;
    let total = size
        .checked_add(trailer_len)
        .ok_or_else(|| Error::Corruption("block length overflow".into()))?;
    Ok(ReadRequest { offset: handle.offset, len: total })
}

/// The post-I/O half of [`read_verified`]: trailer split, MAC-first
/// verification, CRC, and compression checks over already-read bytes.
/// `handle.size` must have passed [`batch_read_plan`].
fn split_verified(
    raw: &Bytes,
    handle: BlockHandle,
    integrity: Option<&IntegrityCtx>,
) -> Result<Bytes> {
    let trailer_len = if integrity.is_some() { HMAC_BLOCK_TRAILER_LEN } else { BLOCK_TRAILER_LEN };
    let size = handle.size as usize;
    let total = size + trailer_len;
    if raw.len() < total {
        return Err(Error::Corruption("block truncated".into()));
    }
    let contents = raw.slice(..size);
    let trailer = &raw[size..];
    let compression = trailer[0];
    if let Some(ctx) = integrity {
        ctx.verify_block(
            handle.offset,
            compression,
            &contents,
            &trailer[BLOCK_TRAILER_LEN..HMAC_BLOCK_TRAILER_LEN],
        )?;
    }
    let stored = u32::from_le_bytes([trailer[1], trailer[2], trailer[3], trailer[4]]);
    let actual = crc32c_extend(crc32c(&contents), &[compression]);
    if crc32c_unmask(stored) != actual {
        return Err(Error::Corruption(format!(
            "block checksum mismatch at offset {}",
            handle.offset
        )));
    }
    if compression != crate::sst::format::COMPRESSION_NONE {
        return Err(Error::Corruption(format!("unsupported compression {compression}")));
    }
    Ok(contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::sst::builder::{TableBuilder, TableBuilderOptions};
    use crate::sst::format::Footer;
    use crate::sst::format::FOOTER_LEN;
    use crate::types::{make_internal_key, ValueType};
    use shield_env::{Env, FileKind, MemEnv};

    fn build_sst(env: &MemEnv, path: &str, n: u32) -> BlockHandle {
        let file = env.new_writable_file(path, FileKind::Sst).unwrap();
        let opts = TableBuilderOptions { block_size: 256, ..TableBuilderOptions::default() };
        let mut b = TableBuilder::new(file, opts);
        for i in 0..n {
            let ik = make_internal_key(format!("key{i:06}").as_bytes(), 10, ValueType::Value);
            b.add(&ik, format!("value-{i}").as_bytes()).unwrap();
        }
        b.finish().unwrap();
        // Decode the footer to find a real data-block handle (the first
        // index entry).
        let file = env.new_random_access_file(path, FileKind::Sst).unwrap();
        let len = file.len().unwrap();
        let footer =
            Footer::decode(&file.read_at(len - FOOTER_LEN as u64, FOOTER_LEN).unwrap()).unwrap();
        let index = Arc::new(Block::from_raw(
            read_verified(file.as_ref(), footer.index, None).unwrap(),
        ));
        let mut it = index.iter();
        it.seek_to_first();
        BlockHandle::decode_varint(it.value()).unwrap()
    }

    #[test]
    fn fetch_hits_cache_on_second_read() {
        let env = MemEnv::new();
        let handle = build_sst(&env, "t.sst", 300);
        let cache = BlockCache::new(1 << 20);
        let fetcher = BlockFetcher::new(Some(cache.clone()), 0);
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let a = fetcher.fetch(&file, 1, handle, BlockKind::Data, true, None).unwrap();
        assert!(matches!(a, FetchedBlock::Cached(_)));
        let s = cache.stats();
        assert_eq!((s.data_hits, s.data_misses), (0, 1));
        let b = fetcher.fetch(&file, 1, handle, BlockKind::Data, true, None).unwrap();
        assert!(Arc::ptr_eq(a.block(), b.block()));
        assert_eq!(cache.stats().data_hits, 1);
    }

    #[test]
    fn fill_cache_false_skips_admission() {
        let env = MemEnv::new();
        let handle = build_sst(&env, "t.sst", 300);
        let cache = BlockCache::new(1 << 20);
        let fetcher = BlockFetcher::new(Some(cache.clone()), 0);
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let a = fetcher.fetch(&file, 1, handle, BlockKind::Data, false, None).unwrap();
        assert!(matches!(a, FetchedBlock::Uncached(_)));
        assert!(cache.is_empty());
        let s = cache.stats();
        assert_eq!((s.hits(), s.misses()), (0, 0), "no-fill reads leave tickers alone");
    }

    #[test]
    fn strict_full_cache_falls_back_to_uncached() {
        let env = MemEnv::new();
        let handle = build_sst(&env, "t.sst", 300);
        let cache = BlockCache::with_config(CacheConfig {
            capacity: 16, // smaller than any block
            strict_capacity: true,
            high_pri_pool_ratio: 0.0,
            shard_bits: 0,
        })
        .unwrap();
        let fetcher = BlockFetcher::new(Some(cache.clone()), 0);
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let got = fetcher.fetch(&file, 1, handle, BlockKind::Data, true, None).unwrap();
        assert!(matches!(got, FetchedBlock::Uncached(_)));
        assert_eq!(cache.stats().oversized_bypass, 1);
    }

    #[test]
    fn prefetch_lands_block_in_cache() {
        let env = MemEnv::new();
        let handle = build_sst(&env, "t.sst", 300);
        let cache = BlockCache::new(1 << 20);
        let fetcher = BlockFetcher::new(Some(cache.clone()), 4);
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        fetcher.prefetch(&file, 1, handle, None);
        // The worker pool is asynchronous; wait briefly for it.
        for _ in 0..200 {
            if cache.contains(&(1, handle.offset)) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(cache.contains(&(1, handle.offset)), "prefetch never landed");
        assert_eq!(cache.stats().readahead_issued, 1);
        // First real read is a hit credited to readahead.
        let got = fetcher.fetch(&file, 1, handle, BlockKind::Data, true, None).unwrap();
        assert!(matches!(got, FetchedBlock::Cached(_)));
        assert_eq!(cache.stats().readahead_useful, 1);
    }

    /// Collects every data-block handle from a table's index, in order.
    fn all_data_handles(env: &MemEnv, path: &str) -> Vec<BlockHandle> {
        let file = env.new_random_access_file(path, FileKind::Sst).unwrap();
        let len = file.len().unwrap();
        let footer =
            Footer::decode(&file.read_at(len - FOOTER_LEN as u64, FOOTER_LEN).unwrap()).unwrap();
        let index = Arc::new(Block::from_raw(
            read_verified(file.as_ref(), footer.index, None).unwrap(),
        ));
        let mut it = index.iter();
        it.seek_to_first();
        let mut out = Vec::new();
        while it.valid() {
            out.push(BlockHandle::decode_varint(it.value()).unwrap());
            it.next();
        }
        out
    }

    #[test]
    fn get_many_matches_serial_fetches_and_batches_io() {
        let env = MemEnv::new();
        build_sst(&env, "t.sst", 400);
        let handles = all_data_handles(&env, "t.sst");
        assert!(handles.len() > 4, "need several blocks, got {}", handles.len());
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();

        // Serial reference on an independent fetcher/cache.
        let serial_fetcher = BlockFetcher::new(Some(BlockCache::new(1 << 20)), 0);
        let expected: Vec<Bytes> = handles
            .iter()
            .map(|h| {
                serial_fetcher
                    .fetch(&file, 1, *h, BlockKind::Data, true, None)
                    .unwrap()
                    .block()
                    .raw_bytes()
                    .clone()
            })
            .collect();

        let cache = BlockCache::new(1 << 20);
        let fetcher = BlockFetcher::with_depth(Some(cache.clone()), 0, 3);
        let reqs: Vec<BlockRequest> =
            handles.iter().map(|h| BlockRequest { handle: *h, kind: BlockKind::Data }).collect();
        let before = env.io_stats().unwrap().snapshot();
        let got = fetcher.get_many(&file, 1, &reqs, true, None);
        let delta = env.io_stats().unwrap().snapshot().delta_since(&before);
        for (g, e) in got.iter().zip(expected.iter()) {
            assert_eq!(g.as_ref().unwrap().block().raw_bytes(), e);
        }
        // MemEnv batch reads record one op per request; what proves the
        // batching is the ticker on the shared cache stats.
        let s = cache.stats();
        assert_eq!(s.batch_read_requests, handles.len() as u64);
        assert_eq!(s.batched_reads, handles.len().div_ceil(3) as u64, "depth-3 windows");
        assert_eq!(delta.read_ops[FileKind::Sst.index()], handles.len() as u64);

        // Second batch: all cache hits, no new I/O.
        let before = env.io_stats().unwrap().snapshot();
        let again = fetcher.get_many(&file, 1, &reqs, true, None);
        for (g, e) in again.iter().zip(expected.iter()) {
            assert_eq!(g.as_ref().unwrap().block().raw_bytes(), e);
        }
        let delta = env.io_stats().unwrap().snapshot().delta_since(&before);
        assert_eq!(delta.read_ops[FileKind::Sst.index()], 0, "hits must not re-read");
    }

    #[test]
    fn get_many_duplicate_handles_coalesce() {
        let env = MemEnv::new();
        let handle = build_sst(&env, "t.sst", 300);
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let cache = BlockCache::new(1 << 20);
        let fetcher = BlockFetcher::new(Some(cache.clone()), 0);
        let reqs = [BlockRequest { handle, kind: BlockKind::Data }; 4];
        let before = env.io_stats().unwrap().snapshot();
        let got = fetcher.get_many(&file, 1, &reqs, true, None);
        let delta = env.io_stats().unwrap().snapshot().delta_since(&before);
        let first = got[0].as_ref().unwrap().block().raw_bytes().clone();
        for g in &got {
            assert_eq!(g.as_ref().unwrap().block().raw_bytes(), &first);
        }
        assert_eq!(
            delta.read_ops[FileKind::Sst.index()],
            1,
            "duplicate handles in one batch must coalesce into one read"
        );
    }

    #[test]
    fn get_many_isolates_hostile_slot() {
        let env = MemEnv::new();
        let handle = build_sst(&env, "t.sst", 300);
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let fetcher = BlockFetcher::new(Some(BlockCache::new(1 << 20)), 0);
        // The hostile slot needs its own offset: cache/single-flight keys
        // are (table, offset), so offset 0 would alias the good block.
        let reqs = [
            BlockRequest { handle, kind: BlockKind::Data },
            BlockRequest {
                handle: BlockHandle { offset: 1 << 40, size: u64::MAX - 4 },
                kind: BlockKind::Data,
            },
        ];
        let got = fetcher.get_many(&file, 1, &reqs, true, None);
        assert!(got[0].is_ok(), "good slot poisoned by hostile neighbor");
        assert!(matches!(got[1], Err(Error::Corruption(_))));
    }

    #[test]
    fn foreground_join_of_inflight_prefetch_counts_useful() {
        // A block whose prefetch read is still in flight when the
        // foreground arrives: the join itself must claim the readahead
        // credit, and the later first cache hit must not double it.
        let env = MemEnv::new();
        let handle = build_sst(&env, "t.sst", 300);
        let cache = BlockCache::new(1 << 20);
        let fetcher = BlockFetcher::new(Some(cache.clone()), 4);
        let raw = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();

        /// Holds reads at `gate_offset` open until released.
        struct SlowFile {
            inner: Arc<dyn RandomAccessFile>,
            gate_offset: u64,
            release: Arc<AtomicBool>,
        }
        impl RandomAccessFile for SlowFile {
            fn read_at(&self, offset: u64, len: usize) -> shield_env::EnvResult<Bytes> {
                if offset == self.gate_offset {
                    while !self.release.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                }
                self.inner.read_at(offset, len)
            }
            fn len(&self) -> shield_env::EnvResult<u64> {
                self.inner.len()
            }
        }

        let release = Arc::new(AtomicBool::new(false));
        let file: Arc<dyn RandomAccessFile> = Arc::new(SlowFile {
            inner: raw,
            gate_offset: handle.offset,
            release: release.clone(),
        });
        fetcher.prefetch(&file, 1, handle, None);
        // Wait until the prefetch worker is actually in flight.
        for _ in 0..500 {
            if fetcher.core.inflight.lock().unwrap().contains_key(&(1, handle.offset)) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(
            fetcher.core.inflight.lock().unwrap().contains_key(&(1, handle.offset)),
            "prefetch never took flight"
        );
        // Foreground arrives mid-prefetch; release the gate from a helper
        // so the join resolves.
        let releaser = {
            let release = release.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                release.store(true, Ordering::SeqCst);
            })
        };
        let got = fetcher.fetch(&file, 1, handle, BlockKind::Data, true, None).unwrap();
        releaser.join().unwrap();
        drop(got);
        let s = cache.stats();
        assert_eq!(s.readahead_issued, 1);
        assert_eq!(s.readahead_useful, 1, "join of in-flight prefetch must count as useful");
        // The entry's prefetched flag was suppressed: a later hit must
        // not credit the same prefetch twice.
        drop(fetcher.fetch(&file, 1, handle, BlockKind::Data, true, None).unwrap());
        assert_eq!(cache.stats().readahead_useful, 1, "double-credited prefetch");
    }

    #[test]
    fn implausible_handle_rejected_before_allocation() {
        let env = MemEnv::new();
        build_sst(&env, "t.sst", 10);
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        // A forged index entry naming a huge block must fail cleanly
        // without attempting the allocation.
        let huge = BlockHandle { offset: 0, size: u64::MAX - 4 };
        let err = read_verified(file.as_ref(), huge, None).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
        let big = BlockHandle { offset: 0, size: (MAX_BLOCK_LEN as u64) + 1 };
        let err = read_verified(file.as_ref(), big, None).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn hmac_table_verifies_and_detects_flips() {
        use crate::integrity::IntegrityCtx;
        use crate::sst::format::FOOTER_V2_LEN;
        let key = [9u8; 32];
        let env = MemEnv::new();
        let file = env.new_writable_file("t.sst", FileKind::Sst).unwrap();
        let opts = TableBuilderOptions {
            block_size: 256,
            mac_key: Some(key),
            ..TableBuilderOptions::default()
        };
        let mut b = TableBuilder::new(file, opts);
        for i in 0..300u32 {
            let ik = make_internal_key(format!("key{i:06}").as_bytes(), 10, ValueType::Value);
            b.add(&ik, format!("value-{i}").as_bytes()).unwrap();
        }
        b.finish().unwrap();
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let len = file.len().unwrap();
        let footer = Footer::decode_from_tail(
            &file.read_at(len - FOOTER_V2_LEN as u64, FOOTER_V2_LEN).unwrap(),
        )
        .unwrap();
        assert_eq!(footer.version, 2);
        let ctx = IntegrityCtx::new(key, footer.context, 1);
        // Clean read verifies.
        let index = read_verified(file.as_ref(), footer.index, Some(&ctx)).unwrap();
        let index = Arc::new(Block::from_raw(index));
        let mut it = index.iter();
        it.seek_to_first();
        let handle = BlockHandle::decode_varint(it.value()).unwrap();
        read_verified(file.as_ref(), handle, Some(&ctx)).unwrap();
        // Bit-flip one data byte: MAC catches it as IntegrityViolation,
        // not Corruption, even though the CRC would also have failed.
        let mut raw = env.raw_content("t.sst").unwrap();
        raw[handle.offset as usize + 3] ^= 0x40;
        env.set_raw_content("t.sst", raw.clone()).unwrap();
        let err = read_verified(file.as_ref(), handle, Some(&ctx)).unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation(_)), "got {err:?}");
        // Fix the CRC over the mutated bytes (keyless, so an attacker
        // can): MAC still catches it.
        let contents = &raw[handle.offset as usize..(handle.offset + handle.size) as usize];
        let crc = shield_crypto::crc32c_masked(crc32c_extend(
            crc32c(contents),
            &[crate::sst::format::COMPRESSION_NONE],
        ));
        let crc_at = (handle.offset + handle.size) as usize + 1;
        raw[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        env.set_raw_content("t.sst", raw).unwrap();
        let err = read_verified(file.as_ref(), handle, Some(&ctx)).unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation(_)), "got {err:?}");
    }
}
