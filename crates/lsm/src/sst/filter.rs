//! Bloom filter over user keys, one filter per table (LevelDB-style
//! double hashing).

/// Builds a bloom filter from key hashes.
pub struct BloomFilterBuilder {
    bits_per_key: usize,
    hashes: Vec<u32>,
}

/// 32-bit hash used for bloom probes (LevelDB's bloom hash).
#[must_use]
pub fn bloom_hash(key: &[u8]) -> u32 {
    hash32(key, 0xbc9f_1d34)
}

fn hash32(data: &[u8], seed: u32) -> u32 {
    const M: u32 = 0xc6a4_a793;
    let mut h = seed ^ (data.len() as u32).wrapping_mul(M);
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        let w = u32::from_le_bytes(crate::varint::fixed(c));
        h = h.wrapping_add(w).wrapping_mul(M);
        h ^= h >> 16;
    }
    let rest = chunks.remainder();
    for (i, &b) in rest.iter().enumerate() {
        h = h.wrapping_add(u32::from(b) << (8 * i));
    }
    if !rest.is_empty() {
        h = h.wrapping_mul(M);
        h ^= h >> 24;
    }
    h
}

impl BloomFilterBuilder {
    /// Creates a builder with `bits_per_key` bits budgeted per key.
    #[must_use]
    pub fn new(bits_per_key: usize) -> Self {
        BloomFilterBuilder { bits_per_key: bits_per_key.max(1), hashes: Vec::new() }
    }

    /// Records a user key.
    pub fn add_key(&mut self, key: &[u8]) {
        self.hashes.push(bloom_hash(key));
    }

    /// Number of keys added.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.hashes.len()
    }

    /// Finalizes the filter block body: `[k: u8][bit array]`.
    #[must_use]
    pub fn finish(&self) -> Vec<u8> {
        // k = bits_per_key * ln(2), clamped to [1, 30].
        let k = ((self.bits_per_key as f64 * 0.69) as usize).clamp(1, 30);
        let bits = (self.hashes.len() * self.bits_per_key).max(64);
        let bytes = bits.div_ceil(8);
        let bits = bytes * 8;
        let mut array = vec![0u8; bytes + 1];
        array[0] = k as u8;
        for &h in &self.hashes {
            let delta = h.rotate_right(17);
            let mut h = h;
            for _ in 0..k {
                let bit = (h as usize) % bits;
                array[1 + bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(delta);
            }
        }
        array
    }
}

/// Queries a serialized bloom filter.
///
/// Backed by [`bytes::Bytes`] so a reader can share the allocation of a
/// cached filter block instead of copying it (the block cache charges the
/// bytes once; see [`crate::sst::fetcher::BlockFetcher`]).
pub struct BloomFilterReader {
    data: bytes::Bytes,
}

impl BloomFilterReader {
    /// Wraps a filter block body.
    #[must_use]
    pub fn new(data: Vec<u8>) -> Self {
        BloomFilterReader { data: data.into() }
    }

    /// Shares `data` without copying.
    #[must_use]
    pub fn from_bytes(data: bytes::Bytes) -> Self {
        BloomFilterReader { data }
    }

    /// True if `key` may be present (false = definitely absent).
    #[must_use]
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.data.len() < 2 {
            return true; // degenerate filter: answer conservatively
        }
        let k = self.data[0] as usize;
        if k == 0 || k > 30 {
            return true;
        }
        let bits = (self.data.len() - 1) * 8;
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let bit = (h as usize) % bits;
            if self.data[1 + bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilterBuilder::new(10);
        let keys: Vec<Vec<u8>> = (0..1000).map(|i| format!("key-{i}").into_bytes()).collect();
        for k in &keys {
            b.add_key(k);
        }
        let r = BloomFilterReader::new(b.finish());
        for k in &keys {
            assert!(r.may_contain(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn low_false_positive_rate() {
        let mut b = BloomFilterBuilder::new(10);
        for i in 0..10_000 {
            b.add_key(format!("present-{i}").as_bytes());
        }
        let r = BloomFilterReader::new(b.finish());
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            if r.may_contain(format!("absent-{i}").as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn empty_filter_small_but_valid() {
        let b = BloomFilterBuilder::new(10);
        let data = b.finish();
        let r = BloomFilterReader::new(data);
        // Empty filter rejects everything (no bits set).
        assert!(!r.may_contain(b"anything"));
    }

    #[test]
    fn degenerate_data_is_conservative() {
        assert!(BloomFilterReader::new(vec![]).may_contain(b"x"));
        assert!(BloomFilterReader::new(vec![0]).may_contain(b"x"));
        assert!(BloomFilterReader::new(vec![31, 0xff]).may_contain(b"x"));
    }

    #[test]
    fn hash_is_stable() {
        // Guard against accidental hash changes breaking on-disk filters.
        assert_eq!(bloom_hash(b""), hash32(b"", 0xbc9f_1d34));
        assert_ne!(bloom_hash(b"a"), bloom_hash(b"b"));
        assert_eq!(bloom_hash(b"hello"), bloom_hash(b"hello"));
    }
}
