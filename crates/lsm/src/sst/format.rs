//! On-disk structures shared by the table builder and reader.

use shield_crypto::DekId;

use crate::error::{Error, Result};
use crate::integrity::{BLOCK_TAG_LEN, CONTEXT_LEN};
use crate::varint::{get_length_prefixed, get_varint64, put_length_prefixed, put_varint64};

/// Magic number at the end of every table file ("SHLD_SST").
pub const TABLE_MAGIC: u64 = 0x5348_4c44_5f53_5354;
/// Version-1 footer length: three 16-byte handles + version + magic.
pub const FOOTER_LEN: usize = 3 * 16 + 4 + 8;
/// Version-2 (authenticated) footer length: the v1 fields plus the
/// 16-byte per-file MAC context ahead of the handles.
pub const FOOTER_V2_LEN: usize = CONTEXT_LEN + FOOTER_LEN;
/// Per-block trailer: compression tag (1) + CRC32C (4).
pub const BLOCK_TRAILER_LEN: usize = 5;
/// Per-block trailer in HMAC (v2) tables: the v1 trailer plus a
/// truncated HMAC-SHA256 tag.
pub const HMAC_BLOCK_TRAILER_LEN: usize = BLOCK_TRAILER_LEN + BLOCK_TAG_LEN;
/// Compression tag meaning "stored raw".
pub const COMPRESSION_NONE: u8 = 0;

/// Location of a block within the table file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block's first byte.
    pub offset: u64,
    /// Length of the block contents, excluding the trailer.
    pub size: u64,
}

impl BlockHandle {
    /// Fixed 16-byte encoding (used in the footer).
    #[must_use]
    pub fn encode_fixed(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.offset.to_le_bytes());
        out[8..].copy_from_slice(&self.size.to_le_bytes());
        out
    }

    /// Decodes the fixed 16-byte form.
    #[must_use]
    pub fn decode_fixed(data: &[u8; 16]) -> BlockHandle {
        BlockHandle {
            offset: u64::from_le_bytes(crate::varint::fixed(&data[..8])),
            size: u64::from_le_bytes(crate::varint::fixed(&data[8..])),
        }
    }

    /// Varint encoding (used as index-block values).
    pub fn encode_varint(&self, out: &mut Vec<u8>) {
        put_varint64(out, self.offset);
        put_varint64(out, self.size);
    }

    /// Decodes the varint form.
    pub fn decode_varint(data: &[u8]) -> Result<BlockHandle> {
        let (offset, n) =
            get_varint64(data).ok_or_else(|| Error::Corruption("bad handle".into()))?;
        let (size, _) =
            get_varint64(&data[n..]).ok_or_else(|| Error::Corruption("bad handle".into()))?;
        Ok(BlockHandle { offset, size })
    }
}

/// The fixed-size footer at the end of every table file.
///
/// Two format versions exist. Both end in `version (u32 LE) ‖ magic
/// (u64 LE)`, so the version is always readable at a fixed distance
/// from the file tail:
///
/// - **v1** (60 bytes): `filter ‖ properties ‖ index ‖ version ‖ magic`
///   — blocks carry CRC-only 5-byte trailers.
/// - **v2** (76 bytes): `context ‖ filter ‖ properties ‖ index ‖
///   version ‖ magic` — blocks carry 21-byte trailers with an HMAC tag
///   keyed over the 16-byte per-file `context`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Footer {
    /// Bloom-filter block (size 0 if absent).
    pub filter: BlockHandle,
    /// Properties block.
    pub properties: BlockHandle,
    /// Index block.
    pub index: BlockHandle,
    /// Format version (1 = CRC-only, 2 = authenticated).
    pub version: u32,
    /// Per-file MAC context (zeroed in v1 footers).
    pub context: [u8; CONTEXT_LEN],
}

impl Footer {
    /// A version-1 (CRC-only) footer.
    #[must_use]
    pub fn v1(filter: BlockHandle, properties: BlockHandle, index: BlockHandle) -> Footer {
        Footer { filter, properties, index, version: 1, context: [0u8; CONTEXT_LEN] }
    }

    /// A version-2 (authenticated) footer carrying the file's MAC
    /// context.
    #[must_use]
    pub fn v2(
        filter: BlockHandle,
        properties: BlockHandle,
        index: BlockHandle,
        context: [u8; CONTEXT_LEN],
    ) -> Footer {
        Footer { filter, properties, index, version: 2, context }
    }

    /// Encoded length for this footer's version.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        if self.version == 2 { FOOTER_V2_LEN } else { FOOTER_LEN }
    }

    /// Per-block trailer length for this footer's version.
    #[must_use]
    pub fn block_trailer_len(&self) -> usize {
        if self.version == 2 { HMAC_BLOCK_TRAILER_LEN } else { BLOCK_TRAILER_LEN }
    }

    /// Serializes the footer in its version's layout.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        if self.version == 2 {
            out.extend_from_slice(&self.context);
        }
        out.extend_from_slice(&self.filter.encode_fixed());
        out.extend_from_slice(&self.properties.encode_fixed());
        out.extend_from_slice(&self.index.encode_fixed());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
        out
    }

    /// Parses and validates a footer from an **exactly-sized** buffer.
    ///
    /// Framing is strict: any length other than the named version's
    /// exact footer length is corruption. Sloppy framing (accepting
    /// trailing padding) would let an attacker append bytes to a table
    /// without invalidating it.
    pub fn decode(data: &[u8]) -> Result<Footer> {
        if data.len() < 12 {
            return Err(Error::Corruption("footer truncated".into()));
        }
        let magic = u64::from_le_bytes(crate::varint::fixed(&data[data.len() - 8..]));
        if magic != TABLE_MAGIC {
            return Err(Error::Corruption(format!("bad table magic {magic:#x}")));
        }
        let version =
            u32::from_le_bytes(crate::varint::fixed(&data[data.len() - 12..data.len() - 8]));
        let (expected, context_len) = match version {
            1 => (FOOTER_LEN, 0),
            2 => (FOOTER_V2_LEN, CONTEXT_LEN),
            v => return Err(Error::Corruption(format!("unknown footer version {v}"))),
        };
        if data.len() != expected {
            return Err(Error::Corruption(format!(
                "footer length mismatch: {} bytes for version {version}",
                data.len()
            )));
        }
        let mut context = [0u8; CONTEXT_LEN];
        if context_len > 0 {
            context.copy_from_slice(&data[..CONTEXT_LEN]);
        }
        let h = &data[context_len..];
        Ok(Footer {
            filter: BlockHandle::decode_fixed(&crate::varint::fixed(&h[..16])),
            properties: BlockHandle::decode_fixed(&crate::varint::fixed(&h[16..32])),
            index: BlockHandle::decode_fixed(&crate::varint::fixed(&h[32..48])),
            version,
            context,
        })
    }

    /// Parses a footer from the last bytes of a file: `tail` is the
    /// file's trailing bytes (at least [`FOOTER_LEN`], ideally
    /// [`FOOTER_V2_LEN`]); the version field determines how much of the
    /// tail is the footer, and that exact slice is decoded strictly.
    pub fn decode_from_tail(tail: &[u8]) -> Result<Footer> {
        if tail.len() < FOOTER_LEN {
            return Err(Error::Corruption("table smaller than footer".into()));
        }
        let magic = u64::from_le_bytes(crate::varint::fixed(&tail[tail.len() - 8..]));
        if magic != TABLE_MAGIC {
            return Err(Error::Corruption(format!("bad table magic {magic:#x}")));
        }
        let version =
            u32::from_le_bytes(crate::varint::fixed(&tail[tail.len() - 12..tail.len() - 8]));
        let expected = match version {
            1 => FOOTER_LEN,
            2 => FOOTER_V2_LEN,
            v => return Err(Error::Corruption(format!("unknown footer version {v}"))),
        };
        if tail.len() < expected {
            return Err(Error::Corruption("footer truncated".into()));
        }
        Footer::decode(&tail[tail.len() - expected..])
    }
}

/// Table-level metadata stored in the properties block.
///
/// Note: in SHIELD mode the authoritative DEK-ID lives in the *plaintext*
/// file header (it must be readable before decryption); the copy here is
/// informational, for tooling that inspects decrypted tables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TableProperties {
    /// Number of entries (including tombstones).
    pub num_entries: u64,
    /// Total bytes of user keys.
    pub raw_key_bytes: u64,
    /// Total bytes of values.
    pub raw_value_bytes: u64,
    /// Number of data blocks.
    pub num_data_blocks: u64,
    /// Smallest user key in the table.
    pub smallest_user_key: Vec<u8>,
    /// Largest user key in the table.
    pub largest_user_key: Vec<u8>,
    /// DEK protecting this file, if encrypted.
    pub dek_id: Option<DekId>,
}

impl TableProperties {
    /// Serializes the properties block body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        put_varint64(&mut out, self.num_entries);
        put_varint64(&mut out, self.raw_key_bytes);
        put_varint64(&mut out, self.raw_value_bytes);
        put_varint64(&mut out, self.num_data_blocks);
        put_length_prefixed(&mut out, &self.smallest_user_key);
        put_length_prefixed(&mut out, &self.largest_user_key);
        match self.dek_id {
            Some(id) => {
                out.push(1);
                out.extend_from_slice(&id.to_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Parses a properties block body.
    pub fn decode(mut data: &[u8]) -> Result<TableProperties> {
        let corrupt = || Error::Corruption("bad properties block".into());
        let read_u64 = |data: &mut &[u8]| -> Result<u64> {
            let (v, n) = get_varint64(data).ok_or_else(corrupt)?;
            *data = &data[n..];
            Ok(v)
        };
        let num_entries = read_u64(&mut data)?;
        let raw_key_bytes = read_u64(&mut data)?;
        let raw_value_bytes = read_u64(&mut data)?;
        let num_data_blocks = read_u64(&mut data)?;
        let (smallest, n) = get_length_prefixed(data).ok_or_else(corrupt)?;
        let smallest = smallest.to_vec();
        data = &data[n..];
        let (largest, n) = get_length_prefixed(data).ok_or_else(corrupt)?;
        let largest = largest.to_vec();
        data = &data[n..];
        let dek_id = match data.first() {
            Some(0) => None,
            Some(1) => {
                if data.len() < 17 {
                    return Err(corrupt());
                }
                Some(DekId::from_bytes(crate::varint::fixed(&data[1..17])))
            }
            _ => return Err(corrupt()),
        };
        Ok(TableProperties {
            num_entries,
            raw_key_bytes,
            raw_value_bytes,
            num_data_blocks,
            smallest_user_key: smallest,
            largest_user_key: largest,
            dek_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_fixed_roundtrip() {
        let h = BlockHandle { offset: 123456789, size: 4096 };
        assert_eq!(BlockHandle::decode_fixed(&h.encode_fixed()), h);
    }

    #[test]
    fn handle_varint_roundtrip() {
        let h = BlockHandle { offset: u64::MAX / 3, size: 77 };
        let mut buf = Vec::new();
        h.encode_varint(&mut buf);
        assert_eq!(BlockHandle::decode_varint(&buf).unwrap(), h);
        assert!(BlockHandle::decode_varint(&[]).is_err());
    }

    #[test]
    fn footer_roundtrip() {
        let f = Footer::v1(
            BlockHandle { offset: 1, size: 2 },
            BlockHandle { offset: 3, size: 4 },
            BlockHandle { offset: 5, size: 6 },
        );
        let enc = f.encode();
        assert_eq!(enc.len(), FOOTER_LEN);
        assert_eq!(Footer::decode(&enc).unwrap(), f);
        // Inexact framing is rejected: a prefixed buffer must NOT decode
        // (it used to — sloppy framing is exploitable parser laxity).
        let mut padded = vec![0u8; 100];
        padded.extend_from_slice(&enc);
        assert!(matches!(Footer::decode(&padded), Err(Error::Corruption(_))));
        // …but `decode_from_tail` deliberately slices the exact footer
        // out of a longer file tail.
        assert_eq!(Footer::decode_from_tail(&padded).unwrap(), f);
    }

    #[test]
    fn footer_v2_roundtrip_carries_context() {
        let f = Footer::v2(
            BlockHandle { offset: 1, size: 2 },
            BlockHandle { offset: 3, size: 4 },
            BlockHandle { offset: 5, size: 6 },
            [0xabu8; CONTEXT_LEN],
        );
        let enc = f.encode();
        assert_eq!(enc.len(), FOOTER_V2_LEN);
        let dec = Footer::decode(&enc).unwrap();
        assert_eq!(dec, f);
        assert_eq!(dec.version, 2);
        assert_eq!(dec.context, [0xabu8; CONTEXT_LEN]);
        assert_eq!(dec.block_trailer_len(), HMAC_BLOCK_TRAILER_LEN);
        // Tail decode picks the right version even with a longer prefix.
        let mut padded = vec![0u8; 33];
        padded.extend_from_slice(&enc);
        assert_eq!(Footer::decode_from_tail(&padded).unwrap(), f);
        // Exact-length framing still enforced.
        assert!(Footer::decode(&padded).is_err());
    }

    #[test]
    fn footer_bad_magic_rejected() {
        let f = Footer::v1(BlockHandle::default(), BlockHandle::default(), BlockHandle::default());
        let mut enc = f.encode();
        enc[55] ^= 0xff;
        assert!(matches!(Footer::decode(&enc), Err(Error::Corruption(_))));
        assert!(Footer::decode(&enc[..10]).is_err());
        assert!(Footer::decode_from_tail(&enc).is_err());
    }

    #[test]
    fn footer_unknown_version_rejected() {
        let f = Footer::v1(BlockHandle::default(), BlockHandle::default(), BlockHandle::default());
        let mut enc = f.encode();
        // Version field sits just before the magic.
        enc[FOOTER_LEN - 12..FOOTER_LEN - 8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(Footer::decode(&enc), Err(Error::Corruption(_))));
        assert!(matches!(Footer::decode_from_tail(&enc), Err(Error::Corruption(_))));
    }

    #[test]
    fn footer_version_length_cross_check() {
        // A v2 version field on a v1-sized buffer must not decode: the
        // length check is per-version, not "whatever fits".
        let f = Footer::v1(BlockHandle::default(), BlockHandle::default(), BlockHandle::default());
        let mut enc = f.encode();
        enc[FOOTER_LEN - 12..FOOTER_LEN - 8].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(Footer::decode(&enc), Err(Error::Corruption(_))));
        assert!(matches!(Footer::decode_from_tail(&enc), Err(Error::Corruption(_))));
    }

    #[test]
    fn properties_roundtrip() {
        let p = TableProperties {
            num_entries: 1000,
            raw_key_bytes: 16000,
            raw_value_bytes: 100_000,
            num_data_blocks: 30,
            smallest_user_key: b"aardvark".to_vec(),
            largest_user_key: b"zebra".to_vec(),
            dek_id: Some(DekId(0xdeadbeef)),
        };
        assert_eq!(TableProperties::decode(&p.encode()).unwrap(), p);
        let p2 = TableProperties { dek_id: None, ..p };
        assert_eq!(TableProperties::decode(&p2.encode()).unwrap(), p2);
    }

    #[test]
    fn properties_truncated_rejected() {
        let p = TableProperties::default();
        let enc = p.encode();
        assert!(TableProperties::decode(&enc[..enc.len() - 1]).is_err());
    }
}
