//! On-disk structures shared by the table builder and reader.

use shield_crypto::DekId;

use crate::error::{Error, Result};
use crate::varint::{get_length_prefixed, get_varint64, put_length_prefixed, put_varint64};

/// Magic number at the end of every table file ("SHLD_SST").
pub const TABLE_MAGIC: u64 = 0x5348_4c44_5f53_5354;
/// Fixed footer length: three 16-byte handles + version + magic.
pub const FOOTER_LEN: usize = 3 * 16 + 4 + 8;
/// Per-block trailer: compression tag (1) + CRC32C (4).
pub const BLOCK_TRAILER_LEN: usize = 5;
/// Compression tag meaning "stored raw".
pub const COMPRESSION_NONE: u8 = 0;

/// Location of a block within the table file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block's first byte.
    pub offset: u64,
    /// Length of the block contents, excluding the trailer.
    pub size: u64,
}

impl BlockHandle {
    /// Fixed 16-byte encoding (used in the footer).
    #[must_use]
    pub fn encode_fixed(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.offset.to_le_bytes());
        out[8..].copy_from_slice(&self.size.to_le_bytes());
        out
    }

    /// Decodes the fixed 16-byte form.
    #[must_use]
    pub fn decode_fixed(data: &[u8; 16]) -> BlockHandle {
        BlockHandle {
            offset: u64::from_le_bytes(crate::varint::fixed(&data[..8])),
            size: u64::from_le_bytes(crate::varint::fixed(&data[8..])),
        }
    }

    /// Varint encoding (used as index-block values).
    pub fn encode_varint(&self, out: &mut Vec<u8>) {
        put_varint64(out, self.offset);
        put_varint64(out, self.size);
    }

    /// Decodes the varint form.
    pub fn decode_varint(data: &[u8]) -> Result<BlockHandle> {
        let (offset, n) =
            get_varint64(data).ok_or_else(|| Error::Corruption("bad handle".into()))?;
        let (size, _) =
            get_varint64(&data[n..]).ok_or_else(|| Error::Corruption("bad handle".into()))?;
        Ok(BlockHandle { offset, size })
    }
}

/// The fixed-size footer at the end of every table file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Footer {
    /// Bloom-filter block (size 0 if absent).
    pub filter: BlockHandle,
    /// Properties block.
    pub properties: BlockHandle,
    /// Index block.
    pub index: BlockHandle,
}

impl Footer {
    /// Serializes the footer.
    #[must_use]
    pub fn encode(&self) -> [u8; FOOTER_LEN] {
        let mut out = [0u8; FOOTER_LEN];
        out[..16].copy_from_slice(&self.filter.encode_fixed());
        out[16..32].copy_from_slice(&self.properties.encode_fixed());
        out[32..48].copy_from_slice(&self.index.encode_fixed());
        out[48..52].copy_from_slice(&1u32.to_le_bytes()); // format version
        out[52..].copy_from_slice(&TABLE_MAGIC.to_le_bytes());
        out
    }

    /// Parses and validates a footer.
    pub fn decode(data: &[u8]) -> Result<Footer> {
        if data.len() < FOOTER_LEN {
            return Err(Error::Corruption("footer truncated".into()));
        }
        let data = &data[data.len() - FOOTER_LEN..];
        let magic = u64::from_le_bytes(crate::varint::fixed(&data[52..60]));
        if magic != TABLE_MAGIC {
            return Err(Error::Corruption(format!("bad table magic {magic:#x}")));
        }
        Ok(Footer {
            filter: BlockHandle::decode_fixed(&crate::varint::fixed(&data[..16])),
            properties: BlockHandle::decode_fixed(&crate::varint::fixed(&data[16..32])),
            index: BlockHandle::decode_fixed(&crate::varint::fixed(&data[32..48])),
        })
    }
}

/// Table-level metadata stored in the properties block.
///
/// Note: in SHIELD mode the authoritative DEK-ID lives in the *plaintext*
/// file header (it must be readable before decryption); the copy here is
/// informational, for tooling that inspects decrypted tables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TableProperties {
    /// Number of entries (including tombstones).
    pub num_entries: u64,
    /// Total bytes of user keys.
    pub raw_key_bytes: u64,
    /// Total bytes of values.
    pub raw_value_bytes: u64,
    /// Number of data blocks.
    pub num_data_blocks: u64,
    /// Smallest user key in the table.
    pub smallest_user_key: Vec<u8>,
    /// Largest user key in the table.
    pub largest_user_key: Vec<u8>,
    /// DEK protecting this file, if encrypted.
    pub dek_id: Option<DekId>,
}

impl TableProperties {
    /// Serializes the properties block body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        put_varint64(&mut out, self.num_entries);
        put_varint64(&mut out, self.raw_key_bytes);
        put_varint64(&mut out, self.raw_value_bytes);
        put_varint64(&mut out, self.num_data_blocks);
        put_length_prefixed(&mut out, &self.smallest_user_key);
        put_length_prefixed(&mut out, &self.largest_user_key);
        match self.dek_id {
            Some(id) => {
                out.push(1);
                out.extend_from_slice(&id.to_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Parses a properties block body.
    pub fn decode(mut data: &[u8]) -> Result<TableProperties> {
        let corrupt = || Error::Corruption("bad properties block".into());
        let read_u64 = |data: &mut &[u8]| -> Result<u64> {
            let (v, n) = get_varint64(data).ok_or_else(corrupt)?;
            *data = &data[n..];
            Ok(v)
        };
        let num_entries = read_u64(&mut data)?;
        let raw_key_bytes = read_u64(&mut data)?;
        let raw_value_bytes = read_u64(&mut data)?;
        let num_data_blocks = read_u64(&mut data)?;
        let (smallest, n) = get_length_prefixed(data).ok_or_else(corrupt)?;
        let smallest = smallest.to_vec();
        data = &data[n..];
        let (largest, n) = get_length_prefixed(data).ok_or_else(corrupt)?;
        let largest = largest.to_vec();
        data = &data[n..];
        let dek_id = match data.first() {
            Some(0) => None,
            Some(1) => {
                if data.len() < 17 {
                    return Err(corrupt());
                }
                Some(DekId::from_bytes(crate::varint::fixed(&data[1..17])))
            }
            _ => return Err(corrupt()),
        };
        Ok(TableProperties {
            num_entries,
            raw_key_bytes,
            raw_value_bytes,
            num_data_blocks,
            smallest_user_key: smallest,
            largest_user_key: largest,
            dek_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_fixed_roundtrip() {
        let h = BlockHandle { offset: 123456789, size: 4096 };
        assert_eq!(BlockHandle::decode_fixed(&h.encode_fixed()), h);
    }

    #[test]
    fn handle_varint_roundtrip() {
        let h = BlockHandle { offset: u64::MAX / 3, size: 77 };
        let mut buf = Vec::new();
        h.encode_varint(&mut buf);
        assert_eq!(BlockHandle::decode_varint(&buf).unwrap(), h);
        assert!(BlockHandle::decode_varint(&[]).is_err());
    }

    #[test]
    fn footer_roundtrip() {
        let f = Footer {
            filter: BlockHandle { offset: 1, size: 2 },
            properties: BlockHandle { offset: 3, size: 4 },
            index: BlockHandle { offset: 5, size: 6 },
        };
        let enc = f.encode();
        assert_eq!(Footer::decode(&enc).unwrap(), f);
        // Works with a longer prefix, too (decoder uses the tail).
        let mut padded = vec![0u8; 100];
        padded.extend_from_slice(&enc);
        assert_eq!(Footer::decode(&padded).unwrap(), f);
    }

    #[test]
    fn footer_bad_magic_rejected() {
        let f = Footer {
            filter: BlockHandle::default(),
            properties: BlockHandle::default(),
            index: BlockHandle::default(),
        };
        let mut enc = f.encode();
        enc[55] ^= 0xff;
        assert!(matches!(Footer::decode(&enc), Err(Error::Corruption(_))));
        assert!(Footer::decode(&enc[..10]).is_err());
    }

    #[test]
    fn properties_roundtrip() {
        let p = TableProperties {
            num_entries: 1000,
            raw_key_bytes: 16000,
            raw_value_bytes: 100_000,
            num_data_blocks: 30,
            smallest_user_key: b"aardvark".to_vec(),
            largest_user_key: b"zebra".to_vec(),
            dek_id: Some(DekId(0xdeadbeef)),
        };
        assert_eq!(TableProperties::decode(&p.encode()).unwrap(), p);
        let p2 = TableProperties { dek_id: None, ..p };
        assert_eq!(TableProperties::decode(&p2.encode()).unwrap(), p2);
    }

    #[test]
    fn properties_truncated_rejected() {
        let p = TableProperties::default();
        let enc = p.encode();
        assert!(TableProperties::decode(&enc[..enc.len() - 1]).is_err());
    }
}
