//! A sharded LRU block cache for decrypted, uncompressed SST blocks.
//!
//! Keys are `(table_id, block_offset)`. The cache stores blocks *after*
//! decryption — in-memory protection is out of the paper's scope (§3.1),
//! and caching plaintext blocks is what makes read-path encryption overhead
//! nearly invisible (§6.2's readrandom results).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::sst::block::Block;

const SHARD_BITS: usize = 4;
const SHARDS: usize = 1 << SHARD_BITS;

/// Cache key: owning table id + block offset within the table file.
pub type CacheKey = (u64, u64);

struct Entry {
    block: Arc<Block>,
    charge: usize,
    /// Recency stamp; larger = more recent.
    stamp: u64,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    usage: usize,
    capacity: usize,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: &CacheKey) -> Option<Arc<Block>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.stamp = tick;
            e.block.clone()
        })
    }

    fn insert(&mut self, key: CacheKey, block: Arc<Block>, charge: usize) {
        self.tick += 1;
        if let Some(old) = self.map.insert(key, Entry { block, charge, stamp: self.tick }) {
            self.usage -= old.charge;
        }
        self.usage += charge;
        while self.usage > self.capacity && self.map.len() > 1 {
            // Evict the least-recently-used entry (linear scan is fine for
            // the few thousand entries a shard holds).
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("non-empty");
            if let Some(e) = self.map.remove(&victim) {
                self.usage -= e.charge;
            }
        }
    }
}

/// A sharded LRU cache with a global byte capacity.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BlockCache {
    /// Creates a cache with `capacity` total bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Arc<Self> {
        let per_shard = (capacity / SHARDS).max(1);
        Arc::new(BlockCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        usage: 0,
                        capacity: per_shard,
                        tick: 0,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        // Mix table id and offset.
        let h = key
            .0
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.1.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        &self.shards[(h >> (64 - SHARD_BITS)) as usize]
    }

    /// Looks up a block, refreshing its recency.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Block>> {
        let found = self.shard_for(key).lock().touch(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts a block with the given byte charge.
    pub fn insert(&self, key: CacheKey, block: Arc<Block>, charge: usize) {
        self.shard_for(&key).lock().insert(key, block, charge);
    }

    /// `(hits, misses)` since creation.
    #[must_use]
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Total bytes currently charged.
    #[must_use]
    pub fn usage(&self) -> usize {
        self.shards.iter().map(|s| s.lock().usage).sum()
    }

    /// Number of cached blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True if no blocks are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Arc<Block> {
        // A minimal well-formed block: one restart (0) + restart count (1).
        let mut data = vec![0u8; n.max(8)];
        let len = data.len();
        data[len - 8..len - 4].copy_from_slice(&0u32.to_le_bytes());
        data[len - 4..].copy_from_slice(&1u32.to_le_bytes());
        Arc::new(Block::from_raw(data.into()))
    }

    #[test]
    fn hit_and_miss() {
        let cache = BlockCache::new(1 << 20);
        assert!(cache.get(&(1, 0)).is_none());
        cache.insert((1, 0), block(100), 100);
        assert!(cache.get(&(1, 0)).is_some());
        let (h, m) = cache.hit_miss();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn eviction_respects_capacity() {
        let cache = BlockCache::new(SHARDS * 1000); // 1000 bytes/shard
        for i in 0..200u64 {
            cache.insert((i, 0), block(100), 100);
        }
        // Usage per shard must have stayed near its cap.
        assert!(cache.usage() <= SHARDS * 1100, "usage {}", cache.usage());
        assert!(cache.len() < 200);
    }

    #[test]
    fn recency_protects_hot_entries() {
        let cache = BlockCache::new(SHARDS * 1000);
        // All keys with the same table id may share a shard — construct
        // keys that definitely hash to the same shard by brute force.
        let probe = (42u64, 0u64);
        cache.insert(probe, block(100), 100);
        for i in 1..100u64 {
            // Keep touching the probe so it stays most-recent.
            let _ = cache.get(&probe);
            cache.insert((42, i), block(100), 100);
        }
        assert!(cache.get(&probe).is_some(), "hot entry evicted");
    }

    #[test]
    fn replacing_updates_charge() {
        let cache = BlockCache::new(1 << 20);
        cache.insert((1, 1), block(100), 100);
        cache.insert((1, 1), block(500), 500);
        assert_eq!(cache.usage(), 500);
        assert_eq!(cache.len(), 1);
    }
}
