//! A sharded LRU block cache for decrypted, uncompressed SST blocks.
//!
//! Keys are `(table_id, block_offset)`. The cache stores blocks *after*
//! decryption — in-memory protection is out of the paper's scope (§3.1),
//! and caching plaintext blocks is what makes read-path encryption overhead
//! nearly invisible (§6.2's readrandom results).
//!
//! Each shard is an intrusive doubly-linked LRU over slab-allocated nodes,
//! so eviction is O(1) (the seed design scanned every entry per insert).
//! Three properties matter to the read path built on top
//! ([`crate::sst::fetcher::BlockFetcher`]):
//!
//! - **Pinned handles.** [`BlockCache::lookup`] and [`BlockCache::insert`]
//!   return a [`CacheHandle`] that holds a reference on the entry. Pinned
//!   entries leave the LRU list and cannot be evicted, but their bytes stay
//!   charged against capacity (strict accounting) — an iterator mid-block
//!   never has its block's charge silently dropped.
//! - **High-priority pool.** Index and filter blocks land in a separate
//!   LRU segment sized by `high_pri_pool_ratio`; data-block scans cannot
//!   flush them. When the pool overflows, its coldest entries demote into
//!   the ordinary LRU instead of being lost.
//! - **Fail-soft admission.** An entry larger than a shard, or any entry
//!   that cannot fit in strict-capacity mode without evicting pinned
//!   blocks, bypasses the cache (`oversized_bypass` / strict rejection
//!   tickers) rather than wedging usage above capacity forever — the seed
//!   cache's `map.len() > 1` guard let one oversized block survive
//!   eviction indefinitely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::sst::block::Block;

const DEFAULT_SHARD_BITS: u32 = 4;
/// Slab sentinel: "no node".
const NIL: usize = usize::MAX;

/// Cache key: owning table id + block offset within the table file.
pub type CacheKey = (u64, u64);

/// What kind of SST block an entry holds; drives per-kind tickers and the
/// high-priority pool (index/filter are high-priority).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockKind {
    /// Prefix-compressed key/value data block.
    Data,
    /// The table's index block (last-key → handle).
    Index,
    /// The table's bloom filter block.
    Filter,
}

impl BlockKind {
    fn high_priority(self) -> bool {
        !matches!(self, BlockKind::Data)
    }
}

/// Construction-time cache knobs (see [`crate::Options`]).
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total byte capacity across all shards. Must be > 0.
    pub capacity: usize,
    /// Reject inserts that cannot fit after evicting every unpinned entry
    /// (the caller falls back to an uncached block). When false, such
    /// inserts are admitted and usage may temporarily exceed capacity.
    pub strict_capacity: bool,
    /// Fraction of capacity reserved for index/filter blocks, in `[0, 1]`.
    pub high_pri_pool_ratio: f64,
    /// log2 of the shard count (0 = one shard, useful for model tests).
    pub shard_bits: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 32 * 1024 * 1024,
            strict_capacity: false,
            high_pri_pool_ratio: 0.1,
            shard_bits: DEFAULT_SHARD_BITS,
        }
    }
}

/// Lifetime counters for the whole cache. Monotonic except
/// `pinned_bytes`/`usage_bytes`, which are point-in-time gauges.
#[derive(Default)]
pub struct CacheStats {
    pub data_hits: AtomicU64,
    pub data_misses: AtomicU64,
    pub index_hits: AtomicU64,
    pub index_misses: AtomicU64,
    pub filter_hits: AtomicU64,
    pub filter_misses: AtomicU64,
    /// Entries evicted to make room.
    pub evictions: AtomicU64,
    /// Inserts that bypassed the cache (oversized or strict-capacity).
    pub oversized_bypass: AtomicU64,
    /// Threads that piggybacked on another thread's in-flight block fetch
    /// instead of issuing their own read (maintained by the fetcher).
    pub singleflight_waits: AtomicU64,
    /// Prefetch requests issued by readahead (maintained by the fetcher).
    pub readahead_issued: AtomicU64,
    /// Prefetched blocks that later served a lookup.
    pub readahead_useful: AtomicU64,
    /// `read_at_many` batch submissions issued by the fetcher's batched
    /// read path (maintained by the fetcher).
    pub batched_reads: AtomicU64,
    /// Individual block reads carried by those batch submissions
    /// (maintained by the fetcher).
    pub batch_read_requests: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`] plus the byte gauges.
#[derive(Default, Clone, Copy, Debug)]
pub struct CacheStatsSnapshot {
    pub data_hits: u64,
    pub data_misses: u64,
    pub index_hits: u64,
    pub index_misses: u64,
    pub filter_hits: u64,
    pub filter_misses: u64,
    pub evictions: u64,
    pub oversized_bypass: u64,
    pub singleflight_waits: u64,
    pub readahead_issued: u64,
    pub readahead_useful: u64,
    pub batched_reads: u64,
    pub batch_read_requests: u64,
    /// Bytes currently held by pinned (in-use) entries.
    pub pinned_bytes: u64,
    /// Total bytes currently charged (pinned + LRU-resident).
    pub usage_bytes: u64,
}

impl CacheStatsSnapshot {
    /// Total hits across block kinds.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.data_hits + self.index_hits + self.filter_hits
    }

    /// Total misses across block kinds.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.data_misses + self.index_misses + self.filter_misses
    }
}

struct Node {
    key: CacheKey,
    block: Arc<Block>,
    charge: usize,
    /// Pin count; > 0 means off-list and not evictable.
    refs: u32,
    /// Which LRU list the node is on (`None` while pinned).
    on_list: Option<ListId>,
    /// Entry currently lives in the high-priority pool.
    high_pri: bool,
    /// Inserted by readahead and not yet hit.
    prefetched: bool,
    prev: usize,
    next: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ListId {
    Low,
    High,
}

/// Intrusive doubly-linked list over slab indices. `head` is MRU.
#[derive(Clone, Copy)]
struct LruList {
    head: usize,
    tail: usize,
}

impl LruList {
    const fn new() -> Self {
        LruList { head: NIL, tail: NIL }
    }

    fn push_front(&mut self, nodes: &mut [Node], idx: usize) {
        nodes[idx].prev = NIL;
        nodes[idx].next = self.head;
        if self.head != NIL {
            nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, nodes: &mut [Node], idx: usize) {
        let (prev, next) = (nodes[idx].prev, nodes[idx].next);
        if prev != NIL {
            nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        nodes[idx].prev = NIL;
        nodes[idx].next = NIL;
    }
}

struct Shard {
    map: HashMap<CacheKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    low: LruList,
    high: LruList,
    /// Total charge of all live nodes (listed + pinned).
    usage: usize,
    /// Charge of nodes with `refs > 0`.
    pinned_usage: usize,
    /// Charge of nodes currently flagged high-priority.
    high_usage: usize,
    capacity: usize,
    high_pri_capacity: usize,
    strict: bool,
}

impl Shard {
    fn new(capacity: usize, high_pri_capacity: usize, strict: bool) -> Self {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            low: LruList::new(),
            high: LruList::new(),
            usage: 0,
            pinned_usage: 0,
            high_usage: 0,
            capacity,
            high_pri_capacity,
            strict,
        }
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn list_mut(&mut self, id: ListId) -> (&mut LruList, &mut Vec<Node>) {
        match id {
            ListId::Low => (&mut self.low, &mut self.nodes),
            ListId::High => (&mut self.high, &mut self.nodes),
        }
    }

    fn detach(&mut self, idx: usize) {
        if let Some(id) = self.nodes[idx].on_list.take() {
            let (list, nodes) = self.list_mut(id);
            list.unlink(nodes, idx);
        }
    }

    fn attach_front(&mut self, idx: usize) {
        let id = if self.nodes[idx].high_pri { ListId::High } else { ListId::Low };
        self.nodes[idx].on_list = Some(id);
        let (list, nodes) = self.list_mut(id);
        list.push_front(nodes, idx);
    }

    /// Pins `idx` (takes it off its list) and returns its block.
    fn pin(&mut self, idx: usize) -> Arc<Block> {
        self.detach(idx);
        let node = &mut self.nodes[idx];
        if node.refs == 0 {
            self.pinned_usage += node.charge;
        }
        node.refs += 1;
        node.block.clone()
    }

    /// Looks up `key`, pins the entry, and reports whether it was a
    /// prefetched block serving its first hit.
    fn lookup(&mut self, key: &CacheKey) -> Option<(usize, Arc<Block>, bool)> {
        let idx = *self.map.get(key)?;
        let was_prefetched = std::mem::take(&mut self.nodes[idx].prefetched);
        Some((idx, self.pin(idx), was_prefetched))
    }

    /// Drops one pin from `idx`; re-lists (or frees a detached zombie)
    /// when the last pin goes away.
    fn release(&mut self, idx: usize) {
        let node = &mut self.nodes[idx];
        debug_assert!(node.refs > 0, "release without a pin");
        node.refs -= 1;
        if node.refs > 0 {
            return;
        }
        let charge = node.charge;
        self.pinned_usage -= charge;
        let in_cache = self.map.get(&node.key).copied() == Some(idx);
        if in_cache {
            self.attach_front(idx);
            // The release may have made an over-capacity shard shrinkable.
            self.evict_to_fit(0);
            self.maintain_high_pool();
        } else {
            self.free_node(idx);
        }
    }

    fn free_node(&mut self, idx: usize) {
        let node = &mut self.nodes[idx];
        self.usage -= node.charge;
        if node.high_pri {
            self.high_usage -= node.charge;
        }
        node.block = dead_block();
        self.free.push(idx);
    }

    /// Evicts list tails (low first, then high) until `incoming` more
    /// bytes fit. Returns the number of evictions; fitting is reported by
    /// re-checking usage at the caller.
    fn evict_to_fit(&mut self, incoming: usize) -> u64 {
        let mut evicted = 0;
        while self.usage + incoming > self.capacity {
            let victim = if self.low.tail != NIL {
                self.low.tail
            } else if self.high.tail != NIL {
                self.high.tail
            } else {
                break; // everything left is pinned
            };
            self.detach(victim);
            let key = self.nodes[victim].key;
            self.map.remove(&key);
            self.free_node(victim);
            evicted += 1;
        }
        evicted
    }

    /// Demotes the coldest high-priority entries into the ordinary LRU
    /// while the pool exceeds its budget.
    fn maintain_high_pool(&mut self) {
        while self.high_usage > self.high_pri_capacity && self.high.tail != NIL {
            let idx = self.high.tail;
            self.detach(idx);
            self.nodes[idx].high_pri = false;
            self.high_usage -= self.nodes[idx].charge;
            self.attach_front(idx); // now lands on the low list (MRU end)
        }
    }

    /// Outcome of [`Shard::insert`].
    fn insert(
        &mut self,
        key: CacheKey,
        block: &Arc<Block>,
        charge: usize,
        kind: BlockKind,
        prefetched: bool,
    ) -> ShardInsert {
        if let Some(&idx) = self.map.get(&key) {
            // Blocks are immutable and keyed by (file, offset): a racing
            // insert carries identical content, so serve the resident copy.
            return ShardInsert::Existing(idx, self.pin(idx));
        }
        if charge > self.capacity {
            return ShardInsert::Bypassed;
        }
        let evicted = self.evict_to_fit(charge);
        if self.strict && self.usage + charge > self.capacity {
            return ShardInsert::Rejected(evicted);
        }
        let high_pri = kind.high_priority();
        let idx = self.alloc(Node {
            key,
            block: block.clone(),
            charge,
            refs: 1, // born pinned by the returned handle
            on_list: None,
            high_pri,
            prefetched,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, idx);
        self.usage += charge;
        self.pinned_usage += charge;
        if high_pri {
            self.high_usage += charge;
            self.maintain_high_pool();
        }
        ShardInsert::Inserted(idx, evicted)
    }
}

enum ShardInsert {
    /// New entry at this slab index, pinned; carries the eviction count.
    Inserted(usize, u64),
    /// The key was already resident; its block is returned pinned.
    Existing(usize, Arc<Block>),
    /// Entry larger than the shard: caller keeps its own copy.
    Bypassed,
    /// Strict-capacity rejection (everything evictable already evicted).
    Rejected(u64),
}

/// Placeholder block for freed slab slots (avoids `Option` in every node).
fn dead_block() -> Arc<Block> {
    Arc::new(Block::from_raw(bytes::Bytes::new()))
}

/// A sharded LRU cache with a global byte capacity.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    shard_bits: u32,
    stats: CacheStats,
}

/// A pinned reference to a cached block. The entry's bytes stay charged
/// and it cannot be evicted until every handle is dropped.
pub struct CacheHandle {
    cache: Arc<BlockCache>,
    shard: usize,
    idx: usize,
    block: Arc<Block>,
}

impl CacheHandle {
    /// The pinned block.
    #[must_use]
    pub fn block(&self) -> &Arc<Block> {
        &self.block
    }
}

impl Drop for CacheHandle {
    fn drop(&mut self) {
        self.cache.shards[self.shard].lock().release(self.idx);
    }
}

impl BlockCache {
    /// Creates a cache with `capacity` total bytes and default knobs.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — gate construction on a non-zero
    /// configuration (as [`crate::Db::open`] does) or use
    /// [`BlockCache::with_config`] to handle the error.
    #[must_use]
    pub fn new(capacity: usize) -> Arc<Self> {
        match Self::with_config(CacheConfig { capacity, ..CacheConfig::default() }) {
            Ok(cache) => cache,
            Err(e) => panic!("invalid block cache capacity {capacity}: {e}"),
        }
    }

    /// Creates a cache, validating the configuration: zero capacity and
    /// ratios outside `[0, 1]` are configuration errors, not silent
    /// misbehavior.
    pub fn with_config(config: CacheConfig) -> Result<Arc<Self>> {
        if config.capacity == 0 {
            return Err(Error::InvalidArgument("block cache capacity must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&config.high_pri_pool_ratio) {
            return Err(Error::InvalidArgument(format!(
                "high_pri_pool_ratio {} outside [0, 1]",
                config.high_pri_pool_ratio
            )));
        }
        if config.shard_bits > 10 {
            return Err(Error::InvalidArgument(format!(
                "shard_bits {} too large (max 10)",
                config.shard_bits
            )));
        }
        let shards = 1usize << config.shard_bits;
        let per_shard = (config.capacity / shards).max(1);
        let high_pri = (per_shard as f64 * config.high_pri_pool_ratio) as usize;
        Ok(Arc::new(BlockCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard, high_pri, config.strict_capacity)))
                .collect(),
            shard_bits: config.shard_bits,
            stats: CacheStats::default(),
        }))
    }

    fn shard_for(&self, key: &CacheKey) -> usize {
        if self.shard_bits == 0 {
            return 0;
        }
        // Mix table id and offset.
        let h = key
            .0
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.1.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        (h >> (64 - self.shard_bits)) as usize
    }

    fn count_lookup(&self, kind: BlockKind, hit: bool) {
        let counter = match (kind, hit) {
            (BlockKind::Data, true) => &self.stats.data_hits,
            (BlockKind::Data, false) => &self.stats.data_misses,
            (BlockKind::Index, true) => &self.stats.index_hits,
            (BlockKind::Index, false) => &self.stats.index_misses,
            (BlockKind::Filter, true) => &self.stats.filter_hits,
            (BlockKind::Filter, false) => &self.stats.filter_misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up a block, pinning it and refreshing its recency.
    #[must_use]
    pub fn lookup(self: &Arc<Self>, key: &CacheKey, kind: BlockKind) -> Option<CacheHandle> {
        let shard = self.shard_for(key);
        let found = self.shards[shard].lock().lookup(key);
        self.count_lookup(kind, found.is_some());
        found.map(|(idx, block, was_prefetched)| {
            if was_prefetched {
                self.stats.readahead_useful.fetch_add(1, Ordering::Relaxed);
            }
            CacheHandle { cache: self.clone(), shard, idx, block }
        })
    }

    /// Inserts a block (pinned by the returned handle). Returns `None`
    /// when the entry was not admitted — oversized for a shard, or
    /// strict-capacity with only pinned entries left — in which case the
    /// caller simply keeps its own `Arc<Block>` uncached.
    pub fn insert(
        self: &Arc<Self>,
        key: CacheKey,
        block: &Arc<Block>,
        charge: usize,
        kind: BlockKind,
        prefetched: bool,
    ) -> Option<CacheHandle> {
        let shard = self.shard_for(&key);
        let outcome = self.shards[shard].lock().insert(key, block, charge, kind, prefetched);
        match outcome {
            ShardInsert::Inserted(idx, evicted) => {
                if evicted > 0 {
                    self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
                }
                Some(CacheHandle { cache: self.clone(), shard, idx, block: block.clone() })
            }
            ShardInsert::Existing(idx, resident) => {
                Some(CacheHandle { cache: self.clone(), shard, idx, block: resident })
            }
            ShardInsert::Bypassed => {
                self.stats.oversized_bypass.fetch_add(1, Ordering::Relaxed);
                None
            }
            ShardInsert::Rejected(evicted) => {
                if evicted > 0 {
                    self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
                }
                self.stats.oversized_bypass.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// True if `key` is resident, without touching recency or tickers
    /// (used by readahead to skip already-cached blocks).
    #[must_use]
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.shards[self.shard_for(key)].lock().map.contains_key(key)
    }

    /// Lifetime counters shared with the fetcher layer.
    #[must_use]
    pub fn counters(&self) -> &CacheStats {
        &self.stats
    }

    /// Snapshot of all counters plus the byte gauges.
    #[must_use]
    pub fn stats(&self) -> CacheStatsSnapshot {
        let mut snap = CacheStatsSnapshot {
            data_hits: self.stats.data_hits.load(Ordering::Relaxed),
            data_misses: self.stats.data_misses.load(Ordering::Relaxed),
            index_hits: self.stats.index_hits.load(Ordering::Relaxed),
            index_misses: self.stats.index_misses.load(Ordering::Relaxed),
            filter_hits: self.stats.filter_hits.load(Ordering::Relaxed),
            filter_misses: self.stats.filter_misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            oversized_bypass: self.stats.oversized_bypass.load(Ordering::Relaxed),
            singleflight_waits: self.stats.singleflight_waits.load(Ordering::Relaxed),
            readahead_issued: self.stats.readahead_issued.load(Ordering::Relaxed),
            readahead_useful: self.stats.readahead_useful.load(Ordering::Relaxed),
            batched_reads: self.stats.batched_reads.load(Ordering::Relaxed),
            batch_read_requests: self.stats.batch_read_requests.load(Ordering::Relaxed),
            pinned_bytes: 0,
            usage_bytes: 0,
        };
        for s in &self.shards {
            let s = s.lock();
            snap.pinned_bytes += s.pinned_usage as u64;
            snap.usage_bytes += s.usage as u64;
        }
        snap
    }

    /// `(hits, misses)` since creation, summed over block kinds.
    #[must_use]
    pub fn hit_miss(&self) -> (u64, u64) {
        let s = self.stats();
        (s.hits(), s.misses())
    }

    /// Total bytes currently charged (pinned + resident).
    #[must_use]
    pub fn usage(&self) -> usize {
        self.shards.iter().map(|s| s.lock().usage).sum()
    }

    /// Bytes currently held by pinned entries.
    #[must_use]
    pub fn pinned_usage(&self) -> usize {
        self.shards.iter().map(|s| s.lock().pinned_usage).sum()
    }

    /// Number of cached blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True if no blocks are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Arc<Block> {
        // A minimal well-formed block: one restart (0) + restart count (1).
        let mut data = vec![0u8; n.max(8)];
        let len = data.len();
        data[len - 8..len - 4].copy_from_slice(&0u32.to_le_bytes());
        data[len - 4..].copy_from_slice(&1u32.to_le_bytes());
        Arc::new(Block::from_raw(data.into()))
    }

    fn single_shard(capacity: usize) -> Arc<BlockCache> {
        BlockCache::with_config(CacheConfig {
            capacity,
            shard_bits: 0,
            high_pri_pool_ratio: 0.0,
            ..CacheConfig::default()
        })
        .expect("config")
    }

    #[test]
    fn hit_and_miss() {
        let cache = BlockCache::new(1 << 20);
        assert!(cache.lookup(&(1, 0), BlockKind::Data).is_none());
        drop(cache.insert((1, 0), &block(100), 100, BlockKind::Data, false));
        assert!(cache.lookup(&(1, 0), BlockKind::Data).is_some());
        let (h, m) = cache.hit_miss();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn eviction_respects_capacity() {
        let cache = single_shard(1000);
        for i in 0..200u64 {
            drop(cache.insert((i, 0), &block(100), 100, BlockKind::Data, false));
        }
        assert!(cache.usage() <= 1000, "usage {}", cache.usage());
        assert_eq!(cache.len(), 10);
        assert!(cache.stats().evictions >= 190);
    }

    #[test]
    fn recency_protects_hot_entries() {
        let cache = single_shard(1000);
        let probe = (42u64, 0u64);
        drop(cache.insert(probe, &block(100), 100, BlockKind::Data, false));
        for i in 1..100u64 {
            // Keep touching the probe so it stays most-recent.
            let _ = cache.lookup(&probe, BlockKind::Data);
            drop(cache.insert((42, i), &block(100), 100, BlockKind::Data, false));
        }
        assert!(cache.lookup(&probe, BlockKind::Data).is_some(), "hot entry evicted");
    }

    #[test]
    fn duplicate_insert_returns_resident_block() {
        let cache = single_shard(1 << 20);
        let first = block(100);
        let h1 = cache.insert((1, 1), &first, 100, BlockKind::Data, false).expect("insert");
        let h2 = cache.insert((1, 1), &block(100), 100, BlockKind::Data, false).expect("dup");
        assert!(Arc::ptr_eq(h1.block(), h2.block()));
        assert_eq!(cache.usage(), 100);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let cache = single_shard(1000);
        let pin =
            cache.insert((7, 7), &block(100), 100, BlockKind::Data, false).expect("insert");
        for i in 0..50u64 {
            drop(cache.insert((1, i), &block(100), 100, BlockKind::Data, false));
        }
        // The pinned entry is still resident and still charged.
        assert!(cache.lookup(&(7, 7), BlockKind::Data).is_some());
        assert!(cache.pinned_usage() >= 100);
        drop(pin);
        // Unpinned now: enough pressure evicts it.
        for i in 100..150u64 {
            drop(cache.insert((1, i), &block(100), 100, BlockKind::Data, false));
        }
        assert_eq!(cache.pinned_usage(), 0);
        assert!(cache.usage() <= 1000);
    }

    #[test]
    fn oversized_insert_bypasses_and_counts() {
        let cache = single_shard(1000);
        assert!(cache.insert((1, 0), &block(4000), 4000, BlockKind::Data, false).is_none());
        assert_eq!(cache.usage(), 0);
        assert_eq!(cache.stats().oversized_bypass, 1);
        // The cache still works for reasonable entries afterwards.
        drop(cache.insert((1, 1), &block(100), 100, BlockKind::Data, false));
        assert_eq!(cache.usage(), 100);
    }

    #[test]
    fn strict_capacity_rejects_when_all_pinned() {
        let cache = BlockCache::with_config(CacheConfig {
            capacity: 1000,
            strict_capacity: true,
            high_pri_pool_ratio: 0.0,
            shard_bits: 0,
        })
        .expect("config");
        let _pins: Vec<_> = (0..9u64)
            .map(|i| cache.insert((1, i), &block(100), 100, BlockKind::Data, false))
            .collect();
        // 900/1000 pinned; a 200-byte entry cannot fit and nothing is
        // evictable, so strict mode must refuse it.
        assert!(cache.insert((2, 0), &block(200), 200, BlockKind::Data, false).is_none());
        assert_eq!(cache.usage(), 900);
    }

    #[test]
    fn non_strict_overfills_rather_than_failing() {
        let cache = single_shard(1000);
        let _pins: Vec<_> = (0..9u64)
            .map(|i| cache.insert((1, i), &block(100), 100, BlockKind::Data, false))
            .collect();
        let handle = cache.insert((2, 0), &block(200), 200, BlockKind::Data, false);
        assert!(handle.is_some());
        assert_eq!(cache.usage(), 1100); // temporarily over while pinned
        drop(handle);
        assert!(cache.usage() <= 1000, "release must evict back under capacity");
    }

    #[test]
    fn high_pri_pool_shields_index_blocks_from_scans() {
        let cache = BlockCache::with_config(CacheConfig {
            capacity: 1000,
            strict_capacity: false,
            high_pri_pool_ratio: 0.3,
            shard_bits: 0,
        })
        .expect("config");
        drop(cache.insert((9, 0), &block(200), 200, BlockKind::Index, false));
        // A long data scan floods the cache…
        for i in 0..100u64 {
            drop(cache.insert((1, i), &block(100), 100, BlockKind::Data, false));
        }
        // …but the index block, in the high-priority pool, survives.
        assert!(cache.lookup(&(9, 0), BlockKind::Index).is_some(), "index evicted by scan");
    }

    #[test]
    fn high_pool_overflow_demotes_rather_than_drops() {
        let cache = BlockCache::with_config(CacheConfig {
            capacity: 1000,
            strict_capacity: false,
            high_pri_pool_ratio: 0.2, // 200-byte pool
            shard_bits: 0,
        })
        .expect("config");
        for i in 0..4u64 {
            drop(cache.insert((9, i), &block(100), 100, BlockKind::Index, false));
        }
        // All four remain resident: overflowed pool entries demote to the
        // ordinary LRU instead of disappearing.
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.usage(), 400);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(BlockCache::with_config(CacheConfig {
            capacity: 0,
            ..CacheConfig::default()
        })
        .is_err());
        assert!(BlockCache::with_config(CacheConfig {
            capacity: 100,
            high_pri_pool_ratio: 1.5,
            ..CacheConfig::default()
        })
        .is_err());
    }

    #[test]
    fn prefetched_first_hit_counts_readahead_useful() {
        let cache = single_shard(1 << 20);
        drop(cache.insert((1, 0), &block(100), 100, BlockKind::Data, true));
        assert_eq!(cache.stats().readahead_useful, 0);
        let _ = cache.lookup(&(1, 0), BlockKind::Data);
        assert_eq!(cache.stats().readahead_useful, 1);
        // Only the first hit counts.
        let _ = cache.lookup(&(1, 0), BlockKind::Data);
        assert_eq!(cache.stats().readahead_useful, 1);
    }

    #[test]
    fn pinned_bytes_gauge_tracks_handles() {
        let cache = single_shard(1 << 20);
        let h = cache.insert((1, 0), &block(100), 100, BlockKind::Data, false).expect("ins");
        assert_eq!(cache.stats().pinned_bytes, 100);
        let h2 = cache.lookup(&(1, 0), BlockKind::Data).expect("hit");
        assert_eq!(cache.stats().pinned_bytes, 100); // same entry, one charge
        drop(h);
        assert_eq!(cache.stats().pinned_bytes, 100);
        drop(h2);
        assert_eq!(cache.stats().pinned_bytes, 0);
        assert_eq!(cache.usage(), 100); // still resident, unpinned
    }
}
