//! Fault-injection torture harness: write → crash → reopen → verify loops
//! under every encryption mode, storage faults during background work, and
//! full KDS outages.
//!
//! The failure model (see DESIGN.md, "Failure model & degradation matrix"):
//!
//! * a system crash may lose unsynced data but never synced data;
//! * transient storage faults are retried and then parked as a sticky,
//!   resumable background error — reads keep serving throughout;
//! * a total KDS outage degrades SHIELD to cached-DEK service: files whose
//!   DEKs are in the secure cache stay readable, new files stall.

use std::sync::Arc;
use std::time::Duration;

use shield::{open_encfs, open_plain, open_shield, ShieldOptions, DEK_CACHE_FILE};
use shield_crypto::{Algorithm, Dek};
use shield_env::{Env, FaultInjectionEnv, FaultOp, FileKind, MemEnv};
use shield_kds::{Kds, KdsConfig, KdsError, ReplicatedKds, RetryPolicy, SecureDekCache, ServerId};
use shield_lsm::{Db, Error, Options, ReadOptions, WriteOptions};

fn key(round: u32, i: u32) -> Vec<u8> {
    format!("r{round:02}-k{i:04}").into_bytes()
}

fn wsync() -> WriteOptions {
    WriteOptions { sync: true }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(1),
        ..RetryPolicy::default()
    }
}

/// One encryption mode of the crash loop: everything needed to open the
/// same database again after a crash.
enum Mode {
    Plain,
    EncFs { dek: Dek },
    Shield { kds: Arc<ReplicatedKds> },
}

impl Mode {
    fn label(&self) -> &'static str {
        match self {
            Mode::Plain => "plain",
            Mode::EncFs { .. } => "encfs",
            Mode::Shield { .. } => "shield",
        }
    }

    /// Runs `work` against a freshly opened handle, then lets the handle
    /// die like a crashed process (no clean shutdown work).
    fn with_db(&self, fenv: &FaultInjectionEnv, work: impl FnOnce(&Db)) {
        let opts = Options::new(Arc::new(fenv.clone()));
        match self {
            Mode::Plain => {
                let db = open_plain(opts, "db").expect("open plain");
                work(&db);
                db.simulate_process_crash();
            }
            Mode::EncFs { dek } => {
                let db = open_encfs(opts, "db", dek.clone(), 0).expect("open encfs");
                work(&db.db);
                db.db.simulate_process_crash();
            }
            Mode::Shield { kds } => {
                let mut sopts =
                    ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk");
                sopts.retry_policy = fast_retry();
                let db = open_shield(opts, "db", sopts).expect("open shield");
                work(&db.db);
                db.db.simulate_process_crash();
            }
        }
    }
}

/// Acceptance (a): a crash right after a synced write loses none of the
/// acked (synced) data, in all three encryption modes, across repeated
/// rounds, with torn WAL writes armed for the unsynced tail.
#[test]
fn crash_after_sync_loses_no_acked_writes_in_all_modes() {
    let modes = [
        Mode::Plain,
        Mode::EncFs { dek: Dek::generate(Algorithm::Aes128Ctr) },
        Mode::Shield { kds: Arc::new(ReplicatedKds::new(2, KdsConfig::default())) },
    ];
    for mode in &modes {
        let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
        const ROUNDS: u32 = 3;
        const N: u32 = 40;
        for round in 0..ROUNDS {
            mode.with_db(&fenv, |db| {
                for i in 0..N - 1 {
                    db.put(&WriteOptions::default(), &key(round, i), b"v").unwrap();
                }
                // The durability point: sync covers the whole WAL prefix.
                db.put(&wsync(), &key(round, N - 1), b"v").unwrap();
                // An unsynced, torn-write tail the crash is allowed to eat.
                // Payloads larger than SHIELD's 512-byte WAL buffer force
                // real env appends in every mode, so the torn rule fires.
                fenv.torn_write_n_times(FileKind::Wal, 1);
                for j in 0..4u32 {
                    let _ = db.put(&WriteOptions::default(), &key(round, 9000 + j), &[b'd'; 300]);
                }
                fenv.disarm_all();
            });
            // System crash: unsynced bytes vanish.
            fenv.crash().unwrap();
            // Reopen and verify every synced round so far, then keep going.
            mode.with_db(&fenv, |db| {
                let r = ReadOptions::new();
                for vr in 0..=round {
                    for i in 0..N {
                        assert!(
                            db.get(&r, &key(vr, i)).unwrap().is_some(),
                            "{}: round {round}: lost acked {}",
                            mode.label(),
                            String::from_utf8_lossy(&key(vr, i)),
                        );
                    }
                }
            });
        }
        let stats = fenv.stats();
        assert_eq!(stats.crashes, ROUNDS as u64, "{}", mode.label());
        assert!(stats.torn_writes >= 1, "{}: torn writes never fired", mode.label());
    }
}

/// Acceptance (b): an SST-read fault during compaction parks the engine on
/// a sticky background error; reads keep serving; after disarming the
/// fault, [`Db::resume`] clears the error and the re-driven compaction
/// succeeds.
#[test]
fn sst_read_fault_during_compaction_is_resumable() {
    let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
    let mut opts = Options::new(Arc::new(fenv.clone()));
    opts.write_buffer_size = 4 << 10;
    opts.compaction.l0_compaction_trigger = 2;
    let db = open_plain(opts, "db").expect("open");

    // A clean first batch, flushed to SSTs with no faults armed.
    for i in 0..200u32 {
        db.put(&WriteOptions::default(), &key(0, i), &[b'x'; 64]).unwrap();
    }
    db.compact_all().unwrap();

    // Arm persistent SST read faults — enough to outlast the bounded
    // background retries — and drive more data into compaction.
    fenv.error_n_times(FileKind::Sst, FaultOp::Read, 10_000);
    let mut failure = None;
    'workload: for batch in 1..6u32 {
        for i in 0..200u32 {
            if let Err(e) = db.put(&WriteOptions::default(), &key(batch, i), &[b'y'; 64]) {
                failure = Some(e);
                break 'workload;
            }
        }
        if let Err(e) = db.compact_all() {
            failure = Some(e);
            break;
        }
    }
    let failure = failure.expect("SST read faults must surface as an engine error");
    assert!(matches!(failure, Error::Io(_)), "unexpected error kind: {failure}");
    assert!(!failure.retryable() || failure.severity() == shield_lsm::Severity::Soft);

    // Soft faults were retried before sticking.
    let stats = db.statistics();
    assert!(
        stats.bg_retries.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "soft faults should be retried before parking"
    );
    assert!(
        stats.env_faults_injected.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "fault gauge should mirror the env"
    );

    fenv.disarm_all();

    // Sticky error: writes refused, reads still fine.
    assert!(db.background_error().is_some());
    let r = ReadOptions::new();
    for i in 0..200u32 {
        assert!(db.get(&r, &key(0, i)).unwrap().is_some(), "read blocked by bg error");
    }

    // Resume clears the error and re-drives the backlog to completion.
    db.resume().expect("resume after disarm");
    assert!(db.background_error().is_none());
    assert_eq!(
        db.statistics().resumes.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    db.put(&WriteOptions::default(), b"post-resume", b"v").unwrap();
    db.compact_all().unwrap();
    assert!(db.get(&r, b"post-resume").unwrap().is_some());
}

/// Acceptance (c): with every KDS replica down, DEKs in the secure cache
/// keep resolving (degraded mode) while uncached fetches fail with
/// `Unavailable`; retry and failover counts are observable; recovery plus
/// [`Db::resume`] brings the engine back.
#[test]
fn kds_total_outage_degrades_to_cached_deks_and_resumes() {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let kds = Arc::new(ReplicatedKds::new(3, KdsConfig::default()));
    let mut sopts = ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk");
    sopts.retry_policy = fast_retry();
    let db = open_shield(Options::new(env.clone()), "db", sopts).expect("open shield");

    for i in 0..100u32 {
        db.put(&WriteOptions::default(), &key(0, i), b"v").unwrap();
    }
    db.flush().unwrap();

    // A DEK this instance has cached (any of its files') and one it has
    // never seen (generated by another server).
    let cache =
        SecureDekCache::open(env.clone(), &format!("db/{DEK_CACHE_FILE}"), b"pk").unwrap();
    let cached_id = *cache.ids().first().expect("cache holds this instance's DEKs");
    let uncached = kds.generate_dek(ServerId(9), Algorithm::Aes128Ctr).unwrap();

    kds.fail_all();

    // Uncached fetch: retried to exhaustion, then Unavailable.
    match db.resolver.resolve(uncached.id()) {
        Err(shield_kds::ResolverError::Kds(KdsError::Unavailable(_))) => {}
        other => panic!("uncached resolve during outage: {other:?}"),
    }
    assert!(db.resolver.is_degraded());

    // Cached DEKs keep resolving: existing files stay readable.
    db.resolver.resolve(cached_id).expect("cached DEK must survive the outage");
    let r = ReadOptions::new();
    for i in 0..100u32 {
        assert!(db.get(&r, &key(0, i)).unwrap().is_some(), "read lost during KDS outage");
    }

    // Retries, failovers and degraded hits are all observable.
    let rs = db.resolver.stats();
    assert_eq!(rs.retries, 2, "max_attempts=3 → 2 retries: {rs:?}");
    assert!(rs.degraded_hits >= 1, "{rs:?}");
    assert!(rs.failovers >= 1, "{rs:?}");
    let gauges = db.statistics();
    assert_eq!(
        gauges.resolver_retries.load(std::sync::atomic::Ordering::Relaxed),
        rs.retries
    );
    assert!(
        gauges.resolver_degraded_hits.load(std::sync::atomic::Ordering::Relaxed) >= 1
    );

    // New files need fresh DEKs: flushing during the outage fails up
    // front (rotating the WAL requires a KDS generation), while the data
    // already written stays queryable from the memtable.
    for i in 0..50u32 {
        db.put(&WriteOptions::default(), &key(1, i), b"v").unwrap();
    }
    let flush_err = db.flush().expect_err("flush needs a fresh DEK during an outage");
    assert!(matches!(flush_err, Error::Encryption(_)), "got {flush_err}");
    assert!(db.get(&r, &key(1, 0)).unwrap().is_some());

    // Replicas return; the same handle recovers without a restart.
    kds.recover_all();
    db.resume().expect("resume clears any parked state after recovery");
    assert!(db.background_error().is_none());
    db.flush().expect("flush succeeds once the KDS is back");
    assert!(!db.resolver.is_degraded());
    db.put(&wsync(), b"post-recovery", b"v").unwrap();
    assert!(db.get(&r, b"post-recovery").unwrap().is_some());
    for i in 0..50u32 {
        assert!(db.get(&r, &key(1, i)).unwrap().is_some(), "outage-era write lost");
    }
}

/// The full stack composes: fault env under SHIELD, crash loops with SST
/// write faults armed, ending in an intact, verifiable database.
#[test]
fn shield_crash_loop_with_write_faults_converges() {
    let kds = Arc::new(ReplicatedKds::new(2, KdsConfig::default()));
    let mode = Mode::Shield { kds };
    let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
    for round in 0..4u32 {
        mode.with_db(&fenv, |db| {
            // One transient SST append fault per round: the flush retries
            // (soft I/O error) and must still land the data.
            fenv.error_once(FileKind::Sst, FaultOp::Append);
            for i in 0..60u32 {
                db.put(&WriteOptions::default(), &key(round, i), &[b'z'; 32]).unwrap();
            }
            db.put(&wsync(), &key(round, 60), b"v").unwrap();
            let _ = db.flush();
            fenv.disarm_all();
        });
        fenv.crash().unwrap();
    }
    mode.with_db(&fenv, |db| {
        let r = ReadOptions::new();
        for round in 0..4u32 {
            for i in 0..=60u32 {
                assert!(
                    db.get(&r, &key(round, i)).unwrap().is_some(),
                    "round {round} lost key {i}"
                );
            }
        }
        db.verify_integrity().expect("post-torture integrity");
    });
}

/// A compaction whose *input* SST has been tampered with (under
/// authenticated-integrity mode) must park `IntegrityViolation` as the
/// background error — and, unlike the transient storage faults above,
/// [`Db::resume`] must refuse to clear it: forged data is not a condition
/// that clears by retrying.
#[test]
fn tampered_sst_during_compaction_is_unrecoverable() {
    let env = MemEnv::new();
    let hmac_opts = |trigger: usize| {
        let mut o = Options::new(Arc::new(env.clone()))
            .with_integrity(shield_lsm::Integrity::Hmac)
            .with_integrity_key([0x42; 32])
            .with_write_buffer_size(1 << 20);
        o.compaction.l0_compaction_trigger = trigger;
        o
    };
    // Phase 1 (high trigger, no background compaction): two overlapping
    // L0 files, so the eventual compaction must merge — a trivial move
    // would never read the tampered input.
    {
        let db = open_plain(hmac_opts(100), "db").unwrap();
        let w = WriteOptions::default();
        for round in 0..2 {
            for i in 0..500u32 {
                db.put(&w, &key(round, i), b"fault-injection-payload").unwrap();
            }
            db.put(&w, b"overlap", &[round as u8]).unwrap();
            db.flush().unwrap();
        }
    }
    let mut ssts: Vec<String> = env
        .list_dir("db")
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".sst"))
        .collect();
    ssts.sort();
    let path = format!("db/{}", ssts[0]);
    let mut raw = env.raw_content(&path).unwrap();
    raw[10] ^= 0x01; // inside data block 0 of a plaintext SST
    env.set_raw_content(&path, raw).unwrap();

    // Phase 2: reopen with a low trigger; the L0→L1 merge now reads the
    // forged input.
    let db = open_plain(hmac_opts(2), "db").unwrap();
    assert!(db.compact_all().is_err(), "merge over forged input must fail");
    let bg = db.background_error().expect("violation parks as background error");
    assert!(
        matches!(bg, Error::IntegrityViolation(_)),
        "classified as a violation, not corruption: {bg}"
    );
    let resumed = db.resume();
    assert!(
        matches!(resumed, Err(Error::IntegrityViolation(_))),
        "resume must refuse to clear an integrity violation"
    );
    assert!(db.background_error().is_some(), "the error stays parked");
    let snap = db.statistics().snapshot();
    assert!(snap.integrity_failures >= 1, "failure ticker must bump");
}
