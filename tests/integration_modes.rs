//! Cross-crate integration: the same workload must behave identically in
//! all three encryption modes (plain / EncFS / SHIELD) across flushes,
//! compactions, restarts — and leave no plaintext behind in the encrypted
//! modes.

use std::sync::Arc;

use shield::{open_encfs, open_plain, open_shield, ShieldOptions};
use shield_crypto::{Algorithm, Dek};
use shield_env::{Env, MemEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Db, Options, ReadOptions, WriteBatch, WriteOptions};

const MARKER: &[u8] = b"PLAINTEXT-CANARY-VALUE";

#[derive(Clone, Copy, PartialEq, Debug)]
enum Mode {
    Plain,
    EncFs,
    Shield,
}

const MODES: [Mode; 3] = [Mode::Plain, Mode::EncFs, Mode::Shield];

struct TestDb {
    env: MemEnv,
    kds: Arc<LocalKds>,
    dek: Dek,
    mode: Mode,
}

impl TestDb {
    fn new(mode: Mode) -> Self {
        TestDb {
            env: MemEnv::new(),
            kds: Arc::new(LocalKds::new(KdsConfig::default())),
            dek: Dek::generate(Algorithm::Aes128Ctr),
            mode,
        }
    }

    fn opts(&self) -> Options {
        let mut o = Options::new(Arc::new(self.env.clone())).with_write_buffer_size(16 << 10);
        o.compaction.l0_compaction_trigger = 2;
        o.compaction.target_file_size = 64 << 10;
        o
    }

    /// Opens (or reopens) the database; returns a uniform handle.
    fn open(&self) -> Box<dyn std::ops::Deref<Target = Db>> {
        match self.mode {
            Mode::Plain => {
                let db = open_plain(self.opts(), "db").expect("open plain");
                Box::new(DbBox(db))
            }
            Mode::EncFs => {
                Box::new(open_encfs(self.opts(), "db", self.dek.clone(), 512).expect("open encfs"))
            }
            Mode::Shield => Box::new(
                open_shield(
                    self.opts(),
                    "db",
                    ShieldOptions::new(self.kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk"),
                )
                .expect("open shield"),
            ),
        }
    }

    /// All raw database bytes currently on "disk".
    fn raw_bytes(&self) -> Vec<u8> {
        let mut all = Vec::new();
        for name in self.env.list_dir("db").expect("list") {
            all.extend(self.env.raw_content(&format!("db/{name}")).expect("raw"));
        }
        all
    }
}

struct DbBox(Db);

impl std::ops::Deref for DbBox {
    type Target = Db;
    fn deref(&self) -> &Db {
        &self.0
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[test]
fn full_lifecycle_identical_across_modes() {
    let w = WriteOptions::default();
    let r = ReadOptions::new();
    for mode in MODES {
        let t = TestDb::new(mode);
        {
            let db = t.open();
            // Enough data to force flushes and compactions.
            for i in 0..3000u32 {
                let mut v = MARKER.to_vec();
                v.extend_from_slice(format!("-{i}").as_bytes());
                db.put(&w, format!("key{:05}", i % 1000).as_bytes(), &v).unwrap();
            }
            db.delete(&w, b"key00007").unwrap();
            db.compact_all().unwrap();

            // Reads across levels.
            assert!(db.get(&r, b"key00500").unwrap().is_some(), "{mode:?}");
            assert_eq!(db.get(&r, b"key00007").unwrap(), None, "{mode:?}");
            // Scans see live keys in order.
            let page = db.scan(&r, b"key00005", 4).unwrap();
            let keys: Vec<_> =
                page.iter().map(|(k, _)| String::from_utf8_lossy(k).to_string()).collect();
            assert_eq!(keys, ["key00005", "key00006", "key00008", "key00009"], "{mode:?}");
            assert!(db.statistics().snapshot().compactions >= 1, "{mode:?}");
        }
        // Restart: everything still there.
        let db = t.open();
        assert!(db.get(&r, b"key00999").unwrap().is_some(), "{mode:?} after restart");
        assert_eq!(db.get(&r, b"key00007").unwrap(), None, "{mode:?} after restart");

        // Confidentiality: encrypted modes leave no canary on disk.
        let raw = t.raw_bytes();
        let leaked = contains(&raw, MARKER);
        match mode {
            Mode::Plain => assert!(leaked, "plain mode should store plaintext"),
            Mode::EncFs | Mode::Shield => {
                assert!(!leaked, "{mode:?} leaked plaintext to disk");
            }
        }
    }
}

#[test]
fn batches_and_snapshots_across_modes() {
    let w = WriteOptions::default();
    for mode in MODES {
        let t = TestDb::new(mode);
        let db = t.open();
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1");
        batch.put(b"b", b"2");
        batch.delete(b"a");
        db.write(&w, batch).unwrap();
        let snap = db.snapshot();
        db.put(&w, b"b", b"overwritten").unwrap();
        assert_eq!(db.get(&snap.read_options(), b"b").unwrap(), Some(b"2".to_vec()), "{mode:?}");
        assert_eq!(
            db.get(&ReadOptions::new(), b"b").unwrap(),
            Some(b"overwritten".to_vec()),
            "{mode:?}"
        );
        assert_eq!(db.get(&ReadOptions::new(), b"a").unwrap(), None, "{mode:?}");
    }
}

#[test]
fn iterators_merge_all_sources_in_every_mode() {
    let w = WriteOptions::default();
    for mode in MODES {
        let t = TestDb::new(mode);
        let db = t.open();
        // SST layer.
        for i in 0..500u32 {
            db.put(&w, format!("s{i:04}").as_bytes(), b"sst").unwrap();
        }
        db.flush().unwrap();
        // Memtable layer, including overwrites.
        for i in (0..500u32).step_by(2) {
            db.put(&w, format!("s{i:04}").as_bytes(), b"mem").unwrap();
        }
        let mut it = db.iter(&ReadOptions::new()).unwrap();
        it.seek_to_first();
        let mut n = 0;
        while it.valid() {
            let expected: &[u8] = if n % 2 == 0 { b"mem" } else { b"sst" };
            assert_eq!(it.value(), expected, "{mode:?} key {n}");
            n += 1;
            it.next();
        }
        assert_eq!(n, 500, "{mode:?}");
    }
}

#[test]
fn shield_restart_uses_cache_not_kds() {
    let t = TestDb::new(Mode::Shield);
    {
        let db = t.open();
        for i in 0..2000u32 {
            db.put(&WriteOptions::default(), format!("{i:06}").as_bytes(), b"v").unwrap();
        }
        db.compact_all().unwrap();
    }
    let fetches_before = t.kds.stats().fetched;
    let db = t.open();
    assert!(db.get(&ReadOptions::new(), b"001234").unwrap().is_some());
    assert_eq!(
        t.kds.stats().fetched,
        fetches_before,
        "restart resolutions must come from the secure cache"
    );
}

#[test]
fn shield_dek_count_tracks_live_files() {
    let t = TestDb::new(Mode::Shield);
    let db = t.open();
    for i in 0..3000u32 {
        db.put(&WriteOptions::default(), format!("{:06}", i % 500).as_bytes(), &[b'x'; 100])
            .unwrap();
    }
    db.compact_all().unwrap();
    // Live DEKs = live files (SSTs + active WAL + manifest). Compaction
    // must have revoked the rotated-away keys.
    let live_files = t.env.list_dir("db").unwrap().len();
    let live_deks = t.kds.live_dek_count();
    assert!(
        live_deks <= live_files,
        "live DEKs ({live_deks}) must not exceed live files ({live_files})"
    );
    let stats = t.kds.stats();
    assert!(stats.generated as usize > live_deks, "rotation must have retired DEKs");
}
