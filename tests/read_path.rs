//! Integration coverage for the unified read path (PR 5):
//!
//! - the sharded intrusive-LRU block cache checked against a reference
//!   `HashMap` + `VecDeque` model under arbitrary op sequences (proptest),
//! - pinned-handle charge accounting (a held handle blocks eviction but
//!   stays charged),
//! - single-flight miss coalescing: N threads missing the same block issue
//!   exactly one underlying read — proven twice, once by `MemEnv` I/O op
//!   counters and once by a `FaultInjectionEnv` armed with a *single*
//!   read error that all N threads must observe,
//! - iterator readahead yielding byte-identical scans, and
//! - a multi-threaded stress run whose post-join state must satisfy the
//!   cache's capacity and pin invariants.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bytes::Bytes;
use proptest::prelude::*;
use shield_env::{
    Env, EnvResult, FaultInjectionEnv, FaultOp, FileKind, MemEnv, NetworkModel, RandomAccessFile,
    RemoteEnv,
};
use shield_lsm::cache::{BlockCache, BlockKind, CacheConfig, CacheKey};
use shield_lsm::iter::InternalIterator;
use shield_lsm::sst::builder::{TableBuilder, TableBuilderOptions};
use shield_lsm::sst::fetcher::read_verified;
use shield_lsm::sst::format::{BlockHandle, Footer, FOOTER_LEN};
use shield_lsm::sst::{Block, BlockFetcher, Table};
use shield_lsm::types::{make_internal_key, ValueType};

/// A minimal well-formed block body of `n` bytes (one restart at 0).
fn test_block(n: usize) -> Arc<Block> {
    let mut data = vec![0u8; n.max(8)];
    let len = data.len();
    data[len - 8..len - 4].copy_from_slice(&0u32.to_le_bytes());
    data[len - 4..].copy_from_slice(&1u32.to_le_bytes());
    Arc::new(Block::from_raw(data.into()))
}

/// Builds an SST of `n` sequential keys with small blocks so scans cross
/// many block boundaries.
fn write_sst(env: &dyn Env, path: &str, n: u32) {
    let file = env.new_writable_file(path, FileKind::Sst).unwrap();
    let opts = TableBuilderOptions { block_size: 256, ..TableBuilderOptions::default() };
    let mut b = TableBuilder::new(file, opts);
    for i in 0..n {
        let ik = make_internal_key(format!("key{i:06}").as_bytes(), 10, ValueType::Value);
        b.add(&ik, format!("value-{i}").as_bytes()).unwrap();
    }
    b.finish().unwrap();
}

/// Decodes the footer and returns the first data block's handle.
fn first_data_handle(file: &Arc<dyn RandomAccessFile>) -> BlockHandle {
    let len = file.len().unwrap();
    let footer =
        Footer::decode(&file.read_at(len - FOOTER_LEN as u64, FOOTER_LEN).unwrap()).unwrap();
    let index = Arc::new(Block::from_raw(read_verified(file.as_ref(), footer.index, None).unwrap()));
    let mut it = index.iter();
    it.seek_to_first();
    BlockHandle::decode_varint(it.value()).unwrap()
}

// ---------------------------------------------------------------------------
// Reference-model equivalence (proptest)
// ---------------------------------------------------------------------------

const MODEL_CAPACITY: usize = 1000;

/// The executable spec for a single-shard, no-high-pool, non-strict LRU
/// whose handles are dropped immediately: a map plus an MRU-front deque.
struct RefLru {
    map: HashMap<CacheKey, usize>,
    lru: VecDeque<CacheKey>,
    usage: usize,
}

impl RefLru {
    fn new() -> Self {
        RefLru { map: HashMap::new(), lru: VecDeque::new(), usage: 0 }
    }

    fn touch(&mut self, key: CacheKey) {
        let pos = self.lru.iter().position(|k| *k == key).expect("listed");
        self.lru.remove(pos);
        self.lru.push_front(key);
    }

    fn lookup(&mut self, key: CacheKey) -> bool {
        if self.map.contains_key(&key) {
            self.touch(key);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: CacheKey, charge: usize) {
        if self.map.contains_key(&key) {
            // Duplicate insert keeps the resident copy (and its original
            // charge) and only refreshes recency.
            self.touch(key);
            return;
        }
        if charge > MODEL_CAPACITY {
            return; // oversized bypass
        }
        while self.usage + charge > MODEL_CAPACITY {
            let victim = self.lru.pop_back().expect("nothing pinned in the model");
            self.usage -= self.map.remove(&victim).expect("mapped");
        }
        self.lru.push_front(key);
        self.map.insert(key, charge);
        self.usage += charge;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every op sequence drives the real single-shard cache and the
    /// reference model in lockstep; hits, usage, and residency must agree
    /// after every step.
    #[test]
    fn cache_matches_reference_lru(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..400)
    ) {
        let cache = BlockCache::with_config(CacheConfig {
            capacity: MODEL_CAPACITY,
            strict_capacity: false,
            high_pri_pool_ratio: 0.0, // one list, like the model
            shard_bits: 0,
        })
        .unwrap();
        let mut model = RefLru::new();
        for (i, &(k, c, is_insert)) in ops.iter().enumerate() {
            let key: CacheKey = (u64::from(k % 24), 0);
            // Charges 50..=1050: some entries oversize the whole cache.
            let charge = 50 + usize::from(c % 11) * 100;
            if is_insert {
                drop(cache.insert(key, &test_block(charge), charge, BlockKind::Data, false));
                model.insert(key, charge);
            } else {
                let hit = cache.lookup(&key, BlockKind::Data).is_some();
                prop_assert_eq!(hit, model.lookup(key), "op {}: hit divergence on {:?}", i, key);
            }
            prop_assert_eq!(cache.usage(), model.usage, "op {}: usage divergence", i);
            prop_assert_eq!(cache.len(), model.map.len(), "op {}: len divergence", i);
        }
        for key in model.map.keys() {
            prop_assert!(cache.contains(key), "model key {:?} missing from cache", key);
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned-handle accounting
// ---------------------------------------------------------------------------

/// Regression: a held handle must keep its entry resident *and charged*
/// under eviction pressure, and release must restore the capacity bound.
#[test]
fn pinned_handle_blocks_eviction_but_stays_charged() {
    let cache = BlockCache::with_config(CacheConfig {
        capacity: 1000,
        strict_capacity: false,
        high_pri_pool_ratio: 0.0,
        shard_bits: 0,
    })
    .unwrap();
    let pin = cache.insert((9, 9), &test_block(300), 300, BlockKind::Data, false).unwrap();
    for i in 0..100u64 {
        drop(cache.insert((1, i), &test_block(100), 100, BlockKind::Data, false));
    }
    assert_eq!(cache.stats().pinned_bytes, 300);
    assert!(cache.lookup(&(9, 9), BlockKind::Data).is_some(), "pinned entry evicted");
    assert!(cache.usage() <= 1000, "pinned charge must count against capacity");
    drop(pin);
    // Drop the lookup pin too (the lookup above returned a fresh handle,
    // dropped at end of its statement), then flood: now it can go.
    for i in 100..200u64 {
        drop(cache.insert((1, i), &test_block(100), 100, BlockKind::Data, false));
    }
    assert!(cache.lookup(&(9, 9), BlockKind::Data).is_none(), "unpinned entry survived flood");
    assert_eq!(cache.stats().pinned_bytes, 0);
    assert!(cache.usage() <= 1000);
}

// ---------------------------------------------------------------------------
// Single-flight coalescing
// ---------------------------------------------------------------------------

/// Holds the leader's read open until `expected_waits` other threads have
/// parked on the in-flight entry, so the miss group is provably
/// concurrent before the one underlying read completes.
struct GatedFile {
    inner: Arc<dyn RandomAccessFile>,
    gate_offset: u64,
    cache: Arc<BlockCache>,
    expected_waits: u64,
}

impl RandomAccessFile for GatedFile {
    fn read_at(&self, offset: u64, len: usize) -> EnvResult<Bytes> {
        if offset == self.gate_offset {
            let deadline = Instant::now() + Duration::from_secs(10);
            while self.cache.counters().singleflight_waits.load(Ordering::Relaxed)
                < self.expected_waits
                && Instant::now() < deadline
            {
                std::thread::yield_now();
            }
        }
        self.inner.read_at(offset, len)
    }

    fn len(&self) -> EnvResult<u64> {
        self.inner.len()
    }
}

const MISS_THREADS: usize = 8;

fn spawn_miss_group(
    fetcher: &Arc<BlockFetcher>,
    file: &Arc<dyn RandomAccessFile>,
    handle: BlockHandle,
) -> Vec<shield_lsm::error::Result<Bytes>> {
    let barrier = Arc::new(Barrier::new(MISS_THREADS));
    let joins: Vec<_> = (0..MISS_THREADS)
        .map(|_| {
            let fetcher = fetcher.clone();
            let file = file.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                fetcher
                    .fetch(&file, 1, handle, BlockKind::Data, true, None)
                    .map(|b| b.block().raw_bytes().clone())
            })
        })
        .collect();
    joins.into_iter().map(|j| j.join().unwrap()).collect()
}

/// Eight threads missing the same cold block must produce exactly one
/// underlying read (counted by `MemEnv`'s per-kind I/O op stats) and
/// seven single-flight waits.
#[test]
fn single_flight_coalesces_concurrent_misses() {
    let env = MemEnv::new();
    write_sst(&env, "t.sst", 400);
    let raw = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
    let handle = first_data_handle(&raw);
    let cache = BlockCache::new(1 << 20);
    let fetcher = BlockFetcher::new(Some(cache.clone()), 0);
    let gated: Arc<dyn RandomAccessFile> = Arc::new(GatedFile {
        inner: raw,
        gate_offset: handle.offset,
        cache: cache.clone(),
        expected_waits: MISS_THREADS as u64 - 1,
    });

    let before = env.io_stats().unwrap().snapshot();
    let results = spawn_miss_group(&fetcher, &gated, handle);

    let first = results[0].as_ref().expect("fetch failed");
    for r in &results {
        assert_eq!(r.as_ref().expect("fetch failed"), first, "threads saw different bytes");
    }
    let delta = env.io_stats().unwrap().snapshot().delta_since(&before);
    assert_eq!(
        delta.read_ops[FileKind::Sst.index()],
        1,
        "eight concurrent misses must coalesce into one read"
    );
    assert_eq!(
        cache.counters().singleflight_waits.load(Ordering::Relaxed),
        MISS_THREADS as u64 - 1
    );
    // The leader's block landed in the cache for everyone after.
    assert!(cache.contains(&(1, handle.offset)));
}

/// Same shape, but the one underlying read fails: a `FaultInjectionEnv`
/// armed with a *single* read error. All eight threads must observe that
/// one error — the injection counter proves no second read was issued —
/// and a later retry (fault disarmed) must succeed.
#[test]
fn single_flight_shares_one_injected_error() {
    let mem = MemEnv::new();
    write_sst(&mem, "t.sst", 400);
    let fault = FaultInjectionEnv::new(Arc::new(mem));
    let raw = fault.new_random_access_file("t.sst", FileKind::Sst).unwrap();
    let handle = first_data_handle(&raw);
    let cache = BlockCache::new(1 << 20);
    let fetcher = BlockFetcher::new(Some(cache.clone()), 0);
    let gated: Arc<dyn RandomAccessFile> = Arc::new(GatedFile {
        inner: raw,
        gate_offset: handle.offset,
        cache: cache.clone(),
        expected_waits: MISS_THREADS as u64 - 1,
    });

    fault.error_n_times(FileKind::Sst, FaultOp::Read, 1);
    let results = spawn_miss_group(&fetcher, &gated, handle);

    for r in &results {
        assert!(r.is_err(), "every coalesced thread must see the injected error");
    }
    assert_eq!(
        fault.stats().injected_for(FaultOp::Read),
        1,
        "exactly one underlying read may be attempted"
    );
    assert!(!cache.contains(&(1, handle.offset)), "failed read must not be cached");
    // The flight retired with its error; a fresh fetch retries and works.
    let retry = fetcher.fetch(&gated, 1, handle, BlockKind::Data, true, None);
    assert!(retry.is_ok(), "retry after transient fault failed: {:?}", retry.err());
    assert!(cache.contains(&(1, handle.offset)));
}

// ---------------------------------------------------------------------------
// Readahead
// ---------------------------------------------------------------------------

/// A slightly-latent link over `MemEnv`: `readahead_issued` counts
/// prefetches that actually *lead* a read, so on an instantaneous file
/// the foreground can legitimately win every race and issue 0.
fn latent_link(mem: MemEnv) -> RemoteEnv {
    RemoteEnv::new(
        Arc::new(mem),
        NetworkModel {
            rtt: Duration::from_micros(200),
            bandwidth_bytes_per_sec: None,
            write_packet_bytes: 64 * 1024,
        },
    )
}

/// Polls until the readahead counters go quiet (the prefetch workers are
/// asynchronous), returning `(issued, useful)`.
fn quiesced_readahead_counters(cache: &Arc<BlockCache>) -> (u64, u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut prev = (u64::MAX, u64::MAX);
    loop {
        let s = cache.stats();
        let now = (s.readahead_issued, s.readahead_useful);
        if now == prev || Instant::now() > deadline {
            return now;
        }
        prev = now;
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A readahead iterator must yield byte-identical entries to a plain one,
/// and must actually issue prefetches while scanning.
#[test]
fn readahead_scan_yields_identical_entries() {
    let env = MemEnv::new();
    write_sst(&env, "t.sst", 500);
    let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
    let plain = Arc::new(Table::open(file, 1, None).unwrap());

    let remote = latent_link(env);
    let rfile = remote.new_random_access_file("t.sst", FileKind::Sst).unwrap();
    let cache = BlockCache::new(1 << 20);
    let fetcher = BlockFetcher::new(Some(cache.clone()), 4);
    let ahead =
        Arc::new(Table::open_with_fetcher(rfile, 1, fetcher, None, Default::default()).unwrap());

    let collect = |t: &Arc<Table>| {
        let mut out = Vec::new();
        let mut it = t.iter();
        it.seek_to_first();
        while it.valid() {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        it.status().unwrap();
        out
    };
    let a = collect(&plain);
    let b = collect(&ahead);
    assert_eq!(a.len(), 500);
    assert_eq!(a, b, "readahead changed scan results");
    let (issued, _) = quiesced_readahead_counters(&cache);
    assert!(issued > 0, "depth-4 scan never prefetched");
}

/// Regression for the readahead-usefulness accounting (PR 7 satellite):
/// the old scheme counted every *enqueued* prefetch as issued (even ones
/// superseded by the foreground) and only cache-flagged hits as useful
/// (missing foreground joins of in-flight prefetches), reporting e.g.
/// 613 issued / 51 useful on a plain sequential scan. With honest
/// accounting — issued when a prefetch worker actually leads a read,
/// useful claimed on join or first hit — a sequential scan over a
/// cache-larger-than-file table must be ≥ 80% useful.
#[test]
fn readahead_usefulness_is_honest_on_sequential_scan() {
    let mem = MemEnv::new();
    write_sst(&mem, "t.sst", 2000);
    let remote = latent_link(mem);
    let file = remote.new_random_access_file("t.sst", FileKind::Sst).unwrap();
    let cache = BlockCache::new(32 << 20); // larger than the file: no eviction
    let fetcher = BlockFetcher::new(Some(cache.clone()), 8);
    let t = Arc::new(Table::open_with_fetcher(file, 1, fetcher, None, Default::default()).unwrap());
    let mut it = t.iter();
    it.seek_to_first();
    let mut n = 0;
    while it.valid() {
        n += 1;
        it.next();
    }
    assert_eq!(n, 2000);
    it.status().unwrap();
    let (issued, useful) = quiesced_readahead_counters(&cache);
    assert!(issued > 0, "depth-8 scan never prefetched");
    assert!(useful <= issued, "useful ({useful}) exceeds issued ({issued})");
    assert!(
        useful * 10 >= issued * 8,
        "sequential-scan readahead only {useful}/{issued} useful (< 0.8)"
    );
}

// ---------------------------------------------------------------------------
// Concurrent stress
// ---------------------------------------------------------------------------

/// Eight threads hammer a small sharded cache with mixed kinds, sizes,
/// and held pins. Afterwards every invariant must hold: nothing pinned,
/// usage within capacity, and the cache still serves inserts.
#[test]
fn concurrent_stress_keeps_cache_invariants() {
    const CAPACITY: usize = 64 * 1024;
    let cache = BlockCache::with_config(CacheConfig {
        capacity: CAPACITY,
        strict_capacity: false,
        high_pri_pool_ratio: 0.2,
        shard_bits: 2,
    })
    .unwrap();
    let joins: Vec<_> = (0..8u64)
        .map(|t| {
            let cache = cache.clone();
            std::thread::spawn(move || {
                // Deterministic per-thread xorshift mix.
                let mut x = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t + 1);
                let mut next = move || {
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
                };
                let mut held = VecDeque::new();
                for _ in 0..4000 {
                    let r = next();
                    let key: CacheKey = (r % 96, 0);
                    let kind = match r % 7 {
                        0 => BlockKind::Index,
                        1 => BlockKind::Filter,
                        _ => BlockKind::Data,
                    };
                    if r % 3 == 0 {
                        let charge = 200 + (r % 5) as usize * 100;
                        if let Some(h) =
                            cache.insert(key, &test_block(charge), charge, kind, false)
                        {
                            held.push_back(h);
                        }
                    } else if let Some(h) = cache.lookup(&key, kind) {
                        held.push_back(h);
                    }
                    // Keep a rolling window of pins alive to exercise
                    // pinned-entry eviction exclusion.
                    while held.len() > 4 {
                        held.pop_front();
                    }
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }
    let s = cache.stats();
    assert_eq!(s.pinned_bytes, 0, "all handles dropped, nothing may stay pinned");
    assert!(
        cache.usage() <= CAPACITY,
        "usage {} exceeds capacity {} with no pins held",
        cache.usage(),
        CAPACITY
    );
    assert_eq!(cache.usage() as u64, s.usage_bytes);
    // Still functional after the storm.
    let h = cache.insert((1000, 0), &test_block(128), 128, BlockKind::Data, false);
    assert!(h.is_some());
}
