//! Edge cases across the whole stack: empty databases, huge values, zero
//! keys, iterator boundaries, reopen loops, and concurrent readers during
//! compaction.

use std::sync::Arc;

use shield_env::{Env as _, MemEnv};
use shield_lsm::{Db, Options, ReadOptions, WriteBatch, WriteOptions};

fn open(env: &MemEnv) -> Db {
    let mut o = Options::new(Arc::new(env.clone())).with_write_buffer_size(16 << 10);
    o.compaction.l0_compaction_trigger = 2;
    Db::open(o, "db").unwrap()
}

#[test]
fn empty_db_iterator_and_scan() {
    let env = MemEnv::new();
    let db = open(&env);
    let mut it = db.iter(&ReadOptions::new()).unwrap();
    it.seek_to_first();
    assert!(!it.valid());
    it.seek(b"anything");
    assert!(!it.valid());
    assert!(db.scan(&ReadOptions::new(), b"", 100).unwrap().is_empty());
    db.flush().unwrap();
    db.compact_all().unwrap();
}

#[test]
fn empty_key_and_empty_value() {
    let env = MemEnv::new();
    let db = open(&env);
    let w = WriteOptions::default();
    db.put(&w, b"", b"empty-key-value").unwrap();
    db.put(&w, b"empty-value", b"").unwrap();
    let r = ReadOptions::new();
    assert_eq!(db.get(&r, b"").unwrap(), Some(b"empty-key-value".to_vec()));
    assert_eq!(db.get(&r, b"empty-value").unwrap(), Some(Vec::new()));
    db.flush().unwrap();
    assert_eq!(db.get(&r, b"").unwrap(), Some(b"empty-key-value".to_vec()));
    assert_eq!(db.get(&r, b"empty-value").unwrap(), Some(Vec::new()));
}

#[test]
fn large_values_span_blocks() {
    let env = MemEnv::new();
    let db = open(&env);
    let w = WriteOptions::default();
    // Values far larger than the 4 KiB block size.
    let big = vec![0x7fu8; 100 * 1024];
    db.put(&w, b"big-1", &big).unwrap();
    db.put(&w, b"big-2", &big).unwrap();
    db.flush().unwrap();
    let r = ReadOptions::new();
    assert_eq!(db.get(&r, b"big-1").unwrap().unwrap().len(), big.len());
    assert_eq!(db.get(&r, b"big-2").unwrap().unwrap(), big);
}

#[test]
fn delete_then_reinsert_cycles() {
    let env = MemEnv::new();
    let db = open(&env);
    let w = WriteOptions::default();
    let r = ReadOptions::new();
    for round in 0..5u32 {
        db.put(&w, b"cycled", format!("v{round}").as_bytes()).unwrap();
        assert_eq!(db.get(&r, b"cycled").unwrap(), Some(format!("v{round}").into_bytes()));
        db.delete(&w, b"cycled").unwrap();
        assert_eq!(db.get(&r, b"cycled").unwrap(), None);
        if round % 2 == 0 {
            db.flush().unwrap();
        }
    }
    db.compact_all().unwrap();
    assert_eq!(db.get(&r, b"cycled").unwrap(), None);
}

#[test]
fn tombstones_survive_partial_compaction() {
    // A delete must shadow an older SST value even when only the newer
    // file has been compacted.
    let env = MemEnv::new();
    let db = open(&env);
    let w = WriteOptions::default();
    for i in 0..200u32 {
        db.put(&w, format!("k{i:04}").as_bytes(), b"v1").unwrap();
    }
    db.flush().unwrap();
    db.delete(&w, b"k0100").unwrap();
    db.flush().unwrap();
    let r = ReadOptions::new();
    assert_eq!(db.get(&r, b"k0100").unwrap(), None);
    db.compact_all().unwrap();
    assert_eq!(db.get(&r, b"k0100").unwrap(), None);
    assert!(db.get(&r, b"k0101").unwrap().is_some());
}

#[test]
fn iterator_stable_while_compaction_runs() {
    let env = MemEnv::new();
    let db = Arc::new(open(&env));
    let w = WriteOptions::default();
    for i in 0..2000u32 {
        db.put(&w, format!("k{i:05}").as_bytes(), b"v").unwrap();
    }
    // Open an iterator, then trigger heavy churn in another thread.
    let mut it = db.iter(&ReadOptions::new()).unwrap();
    let churn = {
        let db = db.clone();
        std::thread::spawn(move || {
            for i in 0..2000u32 {
                db.put(&WriteOptions::default(), format!("x{i:05}").as_bytes(), b"y").unwrap();
            }
            db.compact_all().unwrap();
        })
    };
    it.seek_to_first();
    let mut count = 0;
    let mut prev: Option<Vec<u8>> = None;
    while it.valid() {
        let k = it.key().to_vec();
        if let Some(p) = &prev {
            assert!(*p < k, "iterator went backwards");
        }
        prev = Some(k);
        count += 1;
        it.next();
    }
    churn.join().unwrap();
    // The iterator sees at least its creation-time keys (k-prefixed).
    assert!(count >= 2000, "iterator lost keys: {count}");
}

#[test]
fn batch_with_duplicate_keys_last_wins() {
    let env = MemEnv::new();
    let db = open(&env);
    let mut batch = WriteBatch::new();
    batch.put(b"k", b"first");
    batch.put(b"k", b"second");
    batch.delete(b"k");
    batch.put(b"k", b"final");
    db.write(&WriteOptions::default(), batch).unwrap();
    assert_eq!(db.get(&ReadOptions::new(), b"k").unwrap(), Some(b"final".to_vec()));
}

#[test]
fn many_reopen_cycles_keep_data_and_bound_files() {
    let env = MemEnv::new();
    for round in 0..8u32 {
        let db = open(&env);
        db.put(&WriteOptions::default(), format!("round{round}").as_bytes(), b"v").unwrap();
        db.compact_all().unwrap();
    }
    let db = open(&env);
    let r = ReadOptions::new();
    for round in 0..8u32 {
        assert!(db.get(&r, format!("round{round}").as_bytes()).unwrap().is_some());
    }
    // Obsolete WALs/manifests must not accumulate.
    let files = env.list_dir("db").unwrap();
    assert!(files.len() < 16, "file leak across reopens: {files:?}");
}

#[test]
fn keys_with_binary_content() {
    let env = MemEnv::new();
    let db = open(&env);
    let w = WriteOptions::default();
    let keys: Vec<Vec<u8>> = vec![
        vec![0x00],
        vec![0x00, 0x00],
        vec![0xff; 3],
        vec![0x00, 0xff, 0x00],
        (0u8..=255).collect(),
    ];
    for (i, k) in keys.iter().enumerate() {
        db.put(&w, k, format!("{i}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    let r = ReadOptions::new();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(db.get(&r, k).unwrap(), Some(format!("{i}").into_bytes()));
    }
    // Scan order is bytewise.
    let all = db.scan(&r, b"", 100).unwrap();
    let mut sorted = all.clone();
    sorted.sort();
    assert_eq!(all, sorted);
}

#[test]
fn snapshot_pins_data_across_compaction() {
    let env = MemEnv::new();
    let db = open(&env);
    let w = WriteOptions::default();
    for i in 0..500u32 {
        db.put(&w, format!("k{i:04}").as_bytes(), b"old").unwrap();
    }
    let snap = db.snapshot();
    for i in 0..500u32 {
        db.put(&w, format!("k{i:04}").as_bytes(), b"new").unwrap();
    }
    db.compact_all().unwrap();
    // Snapshot still reads the old values even after compaction.
    assert_eq!(db.get(&snap.read_options(), b"k0042").unwrap(), Some(b"old".to_vec()));
    assert_eq!(db.get(&ReadOptions::new(), b"k0042").unwrap(), Some(b"new".to_vec()));
    drop(snap);
    // After the snapshot dies, another compaction may reclaim history.
    db.compact_all().unwrap();
    assert_eq!(db.get(&ReadOptions::new(), b"k0042").unwrap(), Some(b"new".to_vec()));
}
