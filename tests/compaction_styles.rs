//! End-to-end behavior of the three compaction policies through the full
//! database (paper §6.3, Fig. 15): leveled drains L0 downward, universal
//! merges runs in place, FIFO evicts old data wholesale — and SHIELD's
//! rotation works under all of them.

use std::sync::Arc;

use shield::{open_shield, ShieldOptions};
use shield_env::MemEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{CompactionStyle, Db, Options, ReadOptions, WriteOptions};

fn opts(env: &MemEnv, style: CompactionStyle) -> Options {
    let mut o = Options::new(Arc::new(env.clone()))
        .with_write_buffer_size(8 << 10)
        .with_compaction_style(style);
    o.compaction.l0_compaction_trigger = 2;
    o.compaction.universal_run_trigger = 3;
    o.compaction.fifo_max_bytes = 48 << 10;
    o.compaction.target_file_size = 32 << 10;
    o
}

fn fill(db: &Db, n: u32, key_mod: u32) {
    let w = WriteOptions::default();
    for i in 0..n {
        db.put(&w, format!("key{:06}", i % key_mod).as_bytes(), &[b'v'; 64]).unwrap();
    }
}

#[test]
fn leveled_pushes_data_down() {
    let env = MemEnv::new();
    let db = Db::open(opts(&env, CompactionStyle::Leveled), "db").unwrap();
    fill(&db, 4000, 1000);
    db.compact_all().unwrap();
    let summary = db.level_summary();
    assert!(summary[0].0 <= 2, "L0 should drain: {summary:?}");
    assert!(summary[1].0 >= 1, "L1 should fill: {summary:?}");
    // All latest values readable.
    let r = ReadOptions::new();
    for i in (0..1000).step_by(111) {
        assert!(db.get(&r, format!("key{i:06}").as_bytes()).unwrap().is_some());
    }
}

#[test]
fn universal_merges_runs_in_l0() {
    let env = MemEnv::new();
    let db = Db::open(opts(&env, CompactionStyle::Universal), "db").unwrap();
    fill(&db, 4000, 1000);
    db.compact_all().unwrap();
    let summary = db.level_summary();
    // Universal keeps everything as few L0 runs; deeper levels stay empty.
    assert!(summary[0].0 <= 3, "runs should merge: {summary:?}");
    for (files, _) in &summary[1..] {
        assert_eq!(*files, 0, "universal must not populate deeper levels: {summary:?}");
    }
    assert!(db.statistics().snapshot().compactions >= 1);
    let r = ReadOptions::new();
    for i in (0..1000).step_by(111) {
        assert!(db.get(&r, format!("key{i:06}").as_bytes()).unwrap().is_some());
    }
}

#[test]
fn fifo_evicts_oldest_data() {
    let env = MemEnv::new();
    let db = Db::open(opts(&env, CompactionStyle::Fifo), "db").unwrap();
    // Distinct keys so eviction is observable: newest keys survive.
    let w = WriteOptions::default();
    for i in 0..6000u32 {
        db.put(&w, format!("key{i:06}").as_bytes(), &[b'v'; 64]).unwrap();
    }
    db.compact_all().unwrap();
    // Total size bounded.
    let total: u64 = db.level_summary().iter().map(|(_, b)| b).sum();
    assert!(total <= 80 << 10, "FIFO must bound size, got {total}");
    let r = ReadOptions::new();
    // Newest keys present (still in memtable/new files)…
    assert!(db.get(&r, b"key005999").unwrap().is_some());
    // …and at least some oldest flushed keys are gone.
    let mut evicted = 0;
    for i in 0..500u32 {
        if db.get(&r, format!("key{i:06}").as_bytes()).unwrap().is_none() {
            evicted += 1;
        }
    }
    assert!(evicted > 0, "FIFO should have evicted old keys");
    // No merge compactions were run (FIFO only trims).
    assert_eq!(db.statistics().snapshot().compaction_bytes_written, 0);
}

#[test]
fn shield_rotation_under_every_style() {
    for style in [CompactionStyle::Leveled, CompactionStyle::Universal] {
        let env = MemEnv::new();
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let db = open_shield(
            opts(&env, style),
            "db",
            ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk"),
        )
        .unwrap();
        fill(&db, 4000, 500);
        db.compact_all().unwrap();
        let stats = kds.stats();
        assert!(
            stats.generated as usize > kds.live_dek_count(),
            "{style:?}: compaction must retire DEKs (generated {}, live {})",
            stats.generated,
            kds.live_dek_count()
        );
        let r = ReadOptions::new();
        for i in (0..500).step_by(97) {
            assert!(
                db.get(&r, format!("key{i:06}").as_bytes()).unwrap().is_some(),
                "{style:?}: key{i:06} lost"
            );
        }
    }
}

#[test]
fn write_stalls_engage_under_pressure() {
    let env = MemEnv::new();
    let mut o = Options::new(Arc::new(env.clone())).with_write_buffer_size(4 << 10);
    // One slow background thread, aggressive stall thresholds.
    o = o.with_background_jobs(1);
    o.max_immutable_memtables = 1;
    o.l0_slowdown_trigger = 2;
    o.l0_stop_trigger = 4;
    o.compaction.l0_compaction_trigger = 2;
    let db = Db::open(o, "db").unwrap();
    fill(&db, 5000, 5000);
    db.compact_all().unwrap();
    let stats = db.statistics().snapshot();
    assert!(stats.write_stalls > 0, "backpressure should have engaged");
    assert!(stats.stall_micros > 0);
    // Despite stalls, nothing was lost.
    let r = ReadOptions::new();
    for i in (0..5000).step_by(499) {
        assert!(db.get(&r, format!("key{i:06}").as_bytes()).unwrap().is_some());
    }
}

#[test]
fn overwrites_reclaim_space_under_leveled() {
    let env = MemEnv::new();
    let db = Db::open(opts(&env, CompactionStyle::Leveled), "db").unwrap();
    // Write the same small key set many times over.
    fill(&db, 20_000, 100);
    db.compact_all().unwrap();
    let total: u64 = db.level_summary().iter().map(|(_, b)| b).sum();
    // 100 keys × ~80 bytes ≈ 8 KiB of live data; compaction must have
    // dropped the shadowed versions (allow generous slack for metadata).
    assert!(total < 64 << 10, "space not reclaimed: {total} bytes live");
    let snap = db.statistics().snapshot();
    assert!(snap.compactions >= 1);
}
