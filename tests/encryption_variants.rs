//! Encryption-configuration variants end to end: ChaCha20 instead of AES,
//! replicated KDS with failover, one-time provisioning with the secure
//! cache, cacheless operation, and plaintext-WAL (Table 2) mode.

use std::sync::Arc;

use shield::{open_shield, ShieldOptions};
use shield_crypto::Algorithm;
use shield_env::{Env, MemEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ProvisioningPolicy, ReplicatedKds, ServerId};
use shield_lsm::{Options, ReadOptions, WriteOptions};

fn small_opts(env: &MemEnv) -> Options {
    let mut o = Options::new(Arc::new(env.clone())).with_write_buffer_size(16 << 10);
    o.compaction.l0_compaction_trigger = 2;
    o
}

fn fill_and_verify(db: &shield::ShieldDb, n: u32) {
    let w = WriteOptions::default();
    for i in 0..n {
        db.put(&w, format!("key{i:05}").as_bytes(), format!("val{i}").as_bytes()).unwrap();
    }
    db.compact_all().unwrap();
    let r = ReadOptions::new();
    for i in (0..n).step_by(97) {
        assert_eq!(
            db.get(&r, format!("key{i:05}").as_bytes()).unwrap(),
            Some(format!("val{i}").into_bytes())
        );
    }
}

#[test]
fn chacha20_end_to_end() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let mut sopts = ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk");
    sopts.algorithm = Algorithm::ChaCha20;
    {
        let db = open_shield(small_opts(&env), "db", sopts.clone()).unwrap();
        fill_and_verify(&db, 2000);
    }
    // Ciphertext on disk, and the header names ChaCha20.
    let mut saw_chacha = false;
    for name in env.list_dir("db").unwrap() {
        let raw = env.raw_content(&format!("db/{name}")).unwrap();
        assert!(!raw.windows(3).any(|w| w == b"val"), "{name} leaked");
        if raw.len() > 10 && &raw[..8] == b"SHLDENCF" {
            saw_chacha |= raw[9] == Algorithm::ChaCha20.tag();
        }
    }
    assert!(saw_chacha, "at least one file header should name ChaCha20");
    // Restart works.
    let db = open_shield(small_opts(&env), "db", sopts).unwrap();
    assert!(db.get(&ReadOptions::new(), b"key00042").unwrap().is_some());
}

#[test]
fn replicated_kds_survives_failover_mid_run() {
    let env = MemEnv::new();
    let kds = Arc::new(ReplicatedKds::new(3, KdsConfig::default()));
    let db = open_shield(
        small_opts(&env),
        "db",
        ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk"),
    )
    .unwrap();
    let w = WriteOptions::default();
    for i in 0..1000u32 {
        db.put(&w, format!("a{i:05}").as_bytes(), b"v").unwrap();
        if i == 500 {
            kds.fail_replica(0); // mid-run outage of one replica
        }
    }
    db.compact_all().unwrap();
    assert!(kds.failover_count() > 0, "the dead replica should have been skipped");
    assert!(db.get(&ReadOptions::new(), b"a00900").unwrap().is_some());
}

#[test]
fn once_per_server_provisioning_works_with_secure_cache() {
    // With OncePerServer, a server may fetch each DEK only once — which is
    // fine as long as its secure cache retains it. Restarts must therefore
    // keep working, served by the cache.
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig {
        provisioning: ProvisioningPolicy::OncePerServer,
        ..KdsConfig::default()
    }));
    let sopts = ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk");
    {
        let db = open_shield(small_opts(&env), "db", sopts.clone()).unwrap();
        fill_and_verify(&db, 1000);
    }
    for _ in 0..3 {
        let db = open_shield(small_opts(&env), "db", sopts.clone()).unwrap();
        assert!(db.get(&ReadOptions::new(), b"key00123").unwrap().is_some());
    }
    assert_eq!(kds.stats().denied, 0, "cache must prevent repeat provisioning attempts");
}

#[test]
fn cacheless_mode_hits_kds_every_restart() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let mut sopts = ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"unused");
    sopts.passkey = None; // no secure cache
    {
        let db = open_shield(small_opts(&env), "db", sopts.clone()).unwrap();
        fill_and_verify(&db, 1000);
    }
    let before = kds.stats().fetched;
    {
        let db = open_shield(small_opts(&env), "db", sopts.clone()).unwrap();
        assert!(db.get(&ReadOptions::new(), b"key00001").unwrap().is_some());
    }
    assert!(
        kds.stats().fetched > before,
        "without the cache, restart must fetch DEKs from the KDS"
    );
}

#[test]
fn plaintext_wal_mode_encrypts_only_ssts() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let mut sopts = ShieldOptions::new(kds as Arc<dyn Kds>, ServerId(1), b"pk");
    sopts.encrypt_wal = false;
    let db = open_shield(small_opts(&env), "db", sopts).unwrap();
    let w = WriteOptions::default();
    db.put(&w, b"needle-key", b"needle-value").unwrap();
    db.put(&WriteOptions { sync: true }, b"x", b"y").unwrap();
    // WAL is plaintext: the needle is visible in a .log file.
    let mut wal_leaks = false;
    for name in env.list_dir("db").unwrap() {
        if name.ends_with(".log") {
            let raw = env.raw_content(&format!("db/{name}")).unwrap();
            wal_leaks |= raw.windows(10).any(|w| w == b"needle-key");
        }
    }
    assert!(wal_leaks, "plaintext-WAL mode must leave WAL readable (that's the measurement)");
    // But after a flush, SSTs are ciphertext.
    db.flush().unwrap();
    for name in env.list_dir("db").unwrap() {
        if name.ends_with(".sst") {
            let raw = env.raw_content(&format!("db/{name}")).unwrap();
            assert!(
                !raw.windows(10).any(|w| w == b"needle-key"),
                "SST must be encrypted even in plaintext-WAL mode"
            );
        }
    }
    // And recovery across the mixed plaintext/encrypted files works.
    drop(db);
    let kds2 = Arc::new(LocalKds::new(KdsConfig::default()));
    let _ = kds2; // recovery uses the original KDS via the cache
}

#[test]
fn distinct_server_identities_share_data_through_kds() {
    // Instance A writes; instance B (different ServerId, different cache
    // passkey) opens the same directory and reads, resolving DEKs from
    // the shared KDS — the multi-instance sharing story of §5.2.
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    {
        let a = open_shield(
            small_opts(&env),
            "db",
            ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pass-a"),
        )
        .unwrap();
        fill_and_verify(&a, 500);
    }
    // B cannot open A's cache (wrong passkey), so give B its own cache
    // file by pointing the DB at the same dir but deleting the cache first.
    env.remove_file("db/DEK_CACHE").unwrap();
    let b = open_shield(
        small_opts(&env),
        "db",
        ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(7), b"pass-b"),
    )
    .unwrap();
    assert!(b.get(&ReadOptions::new(), b"key00100").unwrap().is_some());
    assert!(kds.stats().fetched > 0, "B must have fetched A's DEKs from the KDS");
}
