//! Hostile-input fuzzing (PR 6): every parser that consumes persisted
//! bytes — SST footer, block handles, properties, block entries, the WAL
//! reader (legacy and authenticated), the write-batch decoder, the
//! encryption file header, and whole-table open — is driven with
//! arbitrary and mutated inputs. The invariant in every case is the same:
//! clean `Result`s only. No panic, no unbounded allocation, no hang.
//!
//! Two complementary generators:
//!
//! * raw fuzz — fully arbitrary byte strings, exercising the outermost
//!   length/magic checks;
//! * mutation fuzz — a *valid* artifact with attacker-chosen byte edits,
//!   exercising the deep parsing paths that raw bytes rarely reach.

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;
use shield_env::{Env, FileKind, MemEnv};
use shield_lsm::encryption::FileHeader;
use shield_lsm::memtable::MemTable;
use shield_lsm::sst::builder::{TableBuilder, TableBuilderOptions};
use shield_lsm::sst::format::{BlockHandle, Footer, TableProperties};
use shield_lsm::sst::{Block, Table};
use shield_lsm::types::{make_internal_key, ValueType};
use shield_lsm::varint::{get_varint32, get_varint64};
use shield_lsm::wal::{LogReader, LogWriter};
use shield_lsm::WriteBatch;

const MAC_KEY: [u8; 32] = [0x77; 32];

/// Builds a small valid SST (v1 or v2) and returns its raw bytes.
fn valid_table(hmac: bool) -> Vec<u8> {
    let env = MemEnv::new();
    let file = env.new_writable_file("t.sst", FileKind::Sst).unwrap();
    let opts = TableBuilderOptions {
        block_size: 128,
        mac_key: hmac.then_some(MAC_KEY),
        ..TableBuilderOptions::default()
    };
    let mut b = TableBuilder::new(file, opts);
    for i in 0..40u32 {
        let ikey = make_internal_key(format!("key{i:04}").as_bytes(), 100, ValueType::Value);
        b.add(&ikey, format!("value{i:04}").as_bytes()).unwrap();
    }
    b.finish().unwrap();
    env.raw_content("t.sst").unwrap()
}

/// Builds a valid WAL segment (legacy or authenticated) with `n` records.
fn valid_wal(hmac: bool, n: usize) -> Vec<u8> {
    let env = MemEnv::new();
    let file = env.new_writable_file("w.log", FileKind::Wal).unwrap();
    let mut w = if hmac {
        LogWriter::with_integrity(file, Some(MAC_KEY)).unwrap()
    } else {
        LogWriter::new(file)
    };
    for i in 0..n {
        w.add_record(format!("record payload number {i:04}").as_bytes()).unwrap();
    }
    w.sync().unwrap();
    env.raw_content("w.log").unwrap()
}

/// Feeds `raw` to the log reader; must terminate with a clean Result.
fn drain_log(raw: &[u8], key: Option<[u8; 32]>) {
    let env = MemEnv::new();
    {
        let file = env.new_writable_file("w.log", FileKind::Wal).unwrap();
        drop(file);
    }
    env.set_raw_content("w.log", raw.to_vec()).unwrap();
    let src = env.new_sequential_file("w.log", FileKind::Wal).unwrap();
    let mut reader = LogReader::with_integrity(src, key);
    // Bounded: the reader advances through a finite file; 1M records of
    // slack guards the no-hang claim without masking real progress.
    for _ in 0..1_000_000 {
        match reader.read_record() {
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => return,
        }
    }
    panic!("log reader failed to terminate");
}

/// Opens `raw` as a table and walks every access path; Results only.
fn drive_table(raw: &[u8]) {
    let env = MemEnv::new();
    {
        let file = env.new_writable_file("t.sst", FileKind::Sst).unwrap();
        drop(file);
    }
    env.set_raw_content("t.sst", raw.to_vec()).unwrap();
    let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
    let Ok(table) = Table::open(file, 1, None) else { return };
    let table = Arc::new(table);
    let _ = table.get(b"key0000", u64::MAX);
    let _ = table.get(b"nonexistent", u64::MAX);
    let mut it = table.iter();
    use shield_lsm::iter::InternalIterator;
    it.seek_to_first();
    for _ in 0..1_000_000 {
        if !it.valid() {
            break;
        }
        let _ = it.key();
        let _ = it.value();
        it.next();
    }
    assert!(!it.valid(), "table iterator failed to terminate");
    let _ = it.status();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn footer_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Footer::decode(&data);
        let _ = Footer::decode_from_tail(&data);
    }

    #[test]
    fn block_handle_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..40)) {
        let _ = BlockHandle::decode_varint(&data);
    }

    #[test]
    fn properties_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = TableProperties::decode(&data);
    }

    #[test]
    fn varints_never_panic(data in proptest::collection::vec(any::<u8>(), 0..20)) {
        let _ = get_varint32(&data);
        let _ = get_varint64(&data);
    }

    #[test]
    fn file_header_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..80)) {
        let _ = FileHeader::decode(&data);
    }

    #[test]
    fn write_batch_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(batch) = WriteBatch::from_data(&data) {
            let mem = Arc::new(MemTable::new(0));
            let _ = batch.insert_into(&mem);
        }
    }

    #[test]
    fn block_iteration_never_panics_or_hangs(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        target in proptest::collection::vec(any::<u8>(), 0..20),
    ) {
        let block = Arc::new(Block::from_raw(Bytes::from(data)));
        let mut it = block.iter();
        it.seek(&target);
        it.seek_to_first();
        // A block has finitely many entries; parsing must make progress.
        for _ in 0..1_000_000 {
            if !it.valid() {
                break;
            }
            let _ = it.key();
            let _ = it.value();
            it.next();
        }
        prop_assert!(!it.valid(), "block iterator failed to terminate");
    }

    #[test]
    fn log_reader_survives_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        drain_log(&data, None);
        drain_log(&data, Some(MAC_KEY));
    }

    #[test]
    fn log_reader_survives_mutated_valid_segments(
        hmac in any::<bool>(),
        pos in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let mut raw = valid_wal(hmac, 40);
        let at = pos % raw.len();
        raw[at] ^= xor;
        drain_log(&raw, Some(MAC_KEY));
    }

    #[test]
    fn table_open_survives_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        drive_table(&data);
    }

    #[test]
    fn table_open_survives_mutated_valid_tables(
        hmac in any::<bool>(),
        pos in 0usize..8192,
        xor in 1u8..=255,
    ) {
        let mut raw = valid_table(hmac);
        let at = pos % raw.len();
        raw[at] ^= xor;
        drive_table(&raw);
    }

    #[test]
    fn table_open_survives_truncation(hmac in any::<bool>(), keep in 0usize..4096) {
        let raw = valid_table(hmac);
        let keep = keep % (raw.len() + 1);
        drive_table(&raw[..keep]);
    }
}
