//! Adversarial tamper matrix (PR 6): an attacker with raw media access
//! mutates persisted artifacts — SSTs and WAL segments — under every
//! deployment mode (plain / EncFS / SHIELD) and both integrity modes
//! (CRC-only v1 and authenticated HMAC v2).
//!
//! The claims under test:
//!
//! * Under `Integrity::Hmac`, every mutation that alters what the engine
//!   reads back surfaces as `Error::IntegrityViolation` — never as silent
//!   wrong data, and classified apart from `Corruption` (random media rot).
//! * Under CRC-only mode the same suite documents the gaps: CRC-repatch
//!   forgeries, whole-block swaps, cross-file splices, and WAL record
//!   replay all pass CRC verification and go undetected.
//! * Truncation is detected in every mode (as an open/read error — a torn
//!   file is indistinguishable from a crash, so it is not required to be
//!   an IntegrityViolation).
//! * Whole-directory rollback to an earlier consistent state is the
//!   documented out-of-scope attack (needs an external freshness root);
//!   the negative control proves the suite itself is honest about it.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use shield::{open_encfs, open_plain, open_shield, ShieldOptions};
use shield_crypto::{crc32c, crc32c_extend, crc32c_masked, Algorithm, Dek};
use shield_env::{Env, FileKind, MemEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::sst::format::{BlockHandle, Footer, COMPRESSION_NONE};
use shield_lsm::sst::Block;
use shield_lsm::{
    Db, Error, Event, EventListener, Integrity, Options, ReadOptions, WriteOptions,
};

const ENGINE_KEY: [u8; 32] = [0x42; 32];
const N: u32 = 2000;

fn opts(env: &MemEnv, mode: Integrity) -> Options {
    let mut o = Options::new(Arc::new(env.clone()))
        .with_write_buffer_size(1 << 20)
        .with_integrity(mode)
        .with_integrity_key(ENGINE_KEY);
    // Keep reopened instances quiet so tampering is observed by the read
    // path under test, not racing background compactions; the 1 MiB write
    // buffer keeps each fill in a single SST with many equal-size blocks.
    o.compaction.l0_compaction_trigger = 100;
    // Fixed-width keys/values with no prefix sharing give byte-identical
    // block sizes — the swap/splice mutations need size-preserving
    // replacements.
    o.restart_interval = 1;
    o
}

fn key(i: u32) -> Vec<u8> {
    format!("key{i:05}").into_bytes()
}

/// Fixed-width values so every data block has the same byte size — the
/// block-swap and cross-file-splice mutations need size-preserving
/// replacements.
fn value(prefix: &str, i: u32) -> Vec<u8> {
    format!("{prefix}{i:05}").into_bytes()
}

fn fill(db: &Db, prefix: &str, n: u32) {
    let w = WriteOptions::default();
    for i in 0..n {
        db.put(&w, &key(i), &value(prefix, i)).unwrap();
    }
    db.compact_all().unwrap();
}

fn sst_paths(env: &MemEnv, dir: &str) -> Vec<String> {
    let mut v: Vec<String> = env
        .list_dir(dir)
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".sst"))
        .map(|n| format!("{dir}/{n}"))
        .collect();
    v.sort();
    v
}

/// First error observed while point-reading every key, if any.
fn first_get_error(db: &Db, n: u32) -> Option<Error> {
    let r = ReadOptions::new();
    (0..n).find_map(|i| db.get(&r, &key(i)).err())
}

fn is_iv(e: &Error) -> bool {
    matches!(e, Error::IntegrityViolation(_))
}

/// Parses a (plaintext) SST: footer plus the data-block handles listed in
/// the index, in file order.
fn data_handles(raw: &[u8]) -> (Footer, Vec<BlockHandle>) {
    let footer = Footer::decode_from_tail(raw).unwrap();
    let idx = footer.index;
    let body = &raw[idx.offset as usize..(idx.offset + idx.size) as usize];
    let block = Arc::new(Block::from_raw(Bytes::copy_from_slice(body)));
    let mut handles = Vec::new();
    let mut it = block.iter();
    it.seek_to_first();
    while it.valid() {
        handles.push(BlockHandle::decode_varint(it.value()).unwrap());
        it.next();
    }
    (footer, handles)
}

/// Recomputes and re-patches a block's trailer CRC after a payload edit —
/// the "smart" attacker who knows the checksum algorithm. Leaves any HMAC
/// tag alone (the attacker has no key).
fn repatch_crc(raw: &mut [u8], h: BlockHandle) {
    let contents = &raw[h.offset as usize..(h.offset + h.size) as usize];
    let crc = crc32c_masked(crc32c_extend(crc32c(contents), &[COMPRESSION_NONE]));
    let at = (h.offset + h.size) as usize + 1;
    raw[at..at + 4].copy_from_slice(&crc.to_le_bytes());
}

/// Captures `IntegrityViolation` events fanned out by the engine.
#[derive(Default)]
struct Capture(Mutex<Vec<(u64, u64)>>);

impl EventListener for Capture {
    fn on_event(&self, event: &Event) {
        if let Event::IntegrityViolation { file, offset } = event {
            self.0.lock().unwrap().push((*file, *offset));
        }
    }
}

// ---------------------------------------------------------------------
// Plain mode: the attacker reads and writes plaintext structure at will.
// ---------------------------------------------------------------------

/// Baseline: a dumb bit-flip under CRC-only mode is *detected* — but as
/// Corruption, indistinguishable from media rot.
#[test]
fn plain_crc_bitflip_reads_back_as_corruption() {
    let env = MemEnv::new();
    {
        let db = open_plain(opts(&env, Integrity::Crc), "db").unwrap();
        fill(&db, "good", N);
    }
    let path = sst_paths(&env, "db").remove(0);
    let mut raw = env.raw_content(&path).unwrap();
    let (_, handles) = data_handles(&raw);
    raw[handles[0].offset as usize + 4] ^= 0x01;
    env.set_raw_content(&path, raw).unwrap();

    let db = open_plain(opts(&env, Integrity::Crc), "db").unwrap();
    let e = first_get_error(&db, N).expect("flip must not read back clean");
    assert!(matches!(e, Error::Corruption(_)), "CRC mode classifies flips as corruption: {e}");
}

/// The same flip under HMAC mode is an IntegrityViolation, bumps the
/// failure ticker, and emits the event with file/offset coordinates.
#[test]
fn plain_hmac_bitflip_is_integrity_violation_with_ticker_and_event() {
    let env = MemEnv::new();
    {
        let db = open_plain(opts(&env, Integrity::Hmac), "db").unwrap();
        fill(&db, "good", N);
    }
    let path = sst_paths(&env, "db").remove(0);
    let mut raw = env.raw_content(&path).unwrap();
    let (footer, handles) = data_handles(&raw);
    assert_eq!(footer.version, 2, "Hmac mode must write v2 tables");
    raw[handles[0].offset as usize + 4] ^= 0x01;
    env.set_raw_content(&path, raw).unwrap();

    let db = open_plain(opts(&env, Integrity::Hmac), "db").unwrap();
    let cap = Arc::new(Capture::default());
    db.events().add(cap.clone());
    let e = first_get_error(&db, N).expect("flip must not read back clean");
    assert!(is_iv(&e), "expected IntegrityViolation, got: {e}");
    let snap = db.statistics().snapshot();
    assert!(snap.integrity_checks > 0, "verification must have run");
    assert!(snap.integrity_failures >= 1, "failure ticker must bump");
    let seen = cap.0.lock().unwrap();
    assert!(!seen.is_empty(), "IntegrityViolation event must fire");
    assert_eq!(seen[0].1, handles[0].offset, "event carries the block offset");
}

/// The CRC-repatch forgery: alter a value, recompute the block CRC. Under
/// CRC-only mode the altered value reads back *silently* — the documented
/// vulnerability this PR closes.
#[test]
fn plain_crc_repatch_forgery_reads_back_silently() {
    let env = MemEnv::new();
    {
        let db = open_plain(opts(&env, Integrity::Crc), "db").unwrap();
        fill(&db, "good", N);
    }
    let path = sst_paths(&env, "db").remove(0);
    let mut raw = env.raw_content(&path).unwrap();
    let (_, handles) = data_handles(&raw);
    let target = value("good", 0);
    let pos = raw
        .windows(target.len())
        .position(|w| w == target.as_slice())
        .expect("plaintext value visible in plain mode");
    let h = *handles
        .iter()
        .find(|h| (h.offset as usize) <= pos && pos < (h.offset + h.size) as usize)
        .expect("value lives in a data block");
    raw[pos..pos + 4].copy_from_slice(b"evil");
    repatch_crc(&mut raw, h);
    env.set_raw_content(&path, raw).unwrap();

    let db = open_plain(opts(&env, Integrity::Crc), "db").unwrap();
    let got = db.get(&ReadOptions::new(), &key(0)).unwrap();
    assert_eq!(got, Some(value("evil", 0)), "CRC mode accepts the forged value silently");
}

/// The same forgery under HMAC mode: the CRC passes but the tag does not.
#[test]
fn plain_hmac_detects_crc_repatch_forgery() {
    let env = MemEnv::new();
    {
        let db = open_plain(opts(&env, Integrity::Hmac), "db").unwrap();
        fill(&db, "good", N);
    }
    let path = sst_paths(&env, "db").remove(0);
    let mut raw = env.raw_content(&path).unwrap();
    let (_, handles) = data_handles(&raw);
    let target = value("good", 0);
    let pos = raw.windows(target.len()).position(|w| w == target.as_slice()).unwrap();
    let h = *handles
        .iter()
        .find(|h| (h.offset as usize) <= pos && pos < (h.offset + h.size) as usize)
        .unwrap();
    raw[pos..pos + 4].copy_from_slice(b"evil");
    repatch_crc(&mut raw, h);
    env.set_raw_content(&path, raw).unwrap();

    let db = open_plain(opts(&env, Integrity::Hmac), "db").unwrap();
    let e = db.get(&ReadOptions::new(), &key(0)).unwrap_err();
    assert!(is_iv(&e), "repatched CRC must still fail the MAC: {e}");
}

/// Swapping two whole blocks (payload + trailer) keeps every CRC valid.
/// CRC-only mode serves misplaced data with no error at all; HMAC binds
/// each tag to its block offset and rejects the swap.
#[test]
fn block_swap_silent_under_crc_detected_under_hmac() {
    for mode in [Integrity::Crc, Integrity::Hmac] {
        let env = MemEnv::new();
        {
            let db = open_plain(opts(&env, mode), "db").unwrap();
            fill(&db, "good", N);
        }
        let path = sst_paths(&env, "db").remove(0);
        let mut raw = env.raw_content(&path).unwrap();
        let (footer, handles) = data_handles(&raw);
        let tlen = footer.block_trailer_len();
        // Fixed-width entries make equal-size data blocks the common case.
        let (a, b) = handles
            .iter()
            .enumerate()
            .flat_map(|(i, x)| handles.iter().skip(i + 1).map(move |y| (*x, *y)))
            .find(|(x, y)| x.size == y.size)
            .expect("uniform fill should yield equal-size blocks");
        let span = a.size as usize + tlen;
        let block_a = raw[a.offset as usize..a.offset as usize + span].to_vec();
        let block_b = raw[b.offset as usize..b.offset as usize + span].to_vec();
        raw[a.offset as usize..a.offset as usize + span].copy_from_slice(&block_b);
        raw[b.offset as usize..b.offset as usize + span].copy_from_slice(&block_a);
        env.set_raw_content(&path, raw).unwrap();

        let db = open_plain(opts(&env, mode), "db").unwrap();
        let r = ReadOptions::new();
        match mode {
            Integrity::Crc => {
                // Every CRC passes; keys that lived in the swapped blocks
                // silently vanish (binary search lands in the wrong data).
                let mut missing = 0u32;
                for i in 0..N {
                    match db.get(&r, &key(i)) {
                        Ok(Some(_)) => {}
                        Ok(None) => missing += 1,
                        Err(e) => panic!("CRC mode must not error on a block swap: {e}"),
                    }
                }
                assert!(missing > 0, "swap must have silently lost keys");
            }
            Integrity::Hmac => {
                let e = first_get_error(&db, N).expect("swap must be rejected");
                assert!(is_iv(&e), "offset binding must reject the swap: {e}");
            }
        }
    }
}

/// Splicing a block from a *different* file (same offset, same size, valid
/// CRC) feeds attacker-chosen values through CRC-only mode; the per-file
/// MAC context rejects it under HMAC even though the donor file was
/// written by the same engine with the same key.
#[test]
fn cross_file_splice_silent_under_crc_detected_under_hmac() {
    for mode in [Integrity::Crc, Integrity::Hmac] {
        let env = MemEnv::new();
        {
            let db = open_plain(opts(&env, mode), "db1").unwrap();
            fill(&db, "good", N);
        }
        {
            let db = open_plain(opts(&env, mode), "db2").unwrap();
            fill(&db, "evil", N);
        }
        let victim = sst_paths(&env, "db1").remove(0);
        let donor = sst_paths(&env, "db2").remove(0);
        let mut raw = env.raw_content(&victim).unwrap();
        let donor_raw = env.raw_content(&donor).unwrap();
        let (footer, handles) = data_handles(&raw);
        let (_, donor_handles) = data_handles(&donor_raw);
        let (h, dh) = (handles[0], donor_handles[0]);
        assert_eq!(h.size, dh.size, "identical fills produce identical layouts");
        let span = h.size as usize + footer.block_trailer_len();
        raw[h.offset as usize..h.offset as usize + span]
            .copy_from_slice(&donor_raw[dh.offset as usize..dh.offset as usize + span]);
        env.set_raw_content(&victim, raw).unwrap();

        let db = open_plain(opts(&env, mode), "db1").unwrap();
        let r = ReadOptions::new();
        match mode {
            Integrity::Crc => {
                let got = db.get(&r, &key(0)).unwrap();
                assert_eq!(
                    got,
                    Some(value("evil", 0)),
                    "CRC mode serves the spliced foreign value silently"
                );
            }
            Integrity::Hmac => {
                let e = db.get(&r, &key(0)).unwrap_err();
                assert!(is_iv(&e), "context binding must reject the splice: {e}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// WAL: forgery and replay against the recovery path.
// ---------------------------------------------------------------------

/// Byte span and payload location of each WAL record in block 0.
fn wal_records(raw: &[u8], hmac: bool) -> Vec<(usize, usize, u8)> {
    let header = if hmac { 23 } else { 7 };
    let mut pos = if hmac { 32 } else { 0 };
    let mut out = Vec::new();
    while pos + header <= raw.len() {
        let len = u16::from_le_bytes([raw[pos + 4], raw[pos + 5]]) as usize;
        let ty = raw[pos + 6];
        if ty == 0 && len == 0 {
            break; // zero padding / end of written records
        }
        if pos + header + len > raw.len() {
            break;
        }
        out.push((pos, len, ty));
        pos += header + len;
    }
    out
}

fn wal_path(env: &MemEnv, dir: &str) -> String {
    let mut logs: Vec<String> = env
        .list_dir(dir)
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".log"))
        .collect();
    logs.sort();
    format!("{dir}/{}", logs.pop().expect("a live WAL"))
}

/// Forge an unflushed write in the WAL and repatch the record CRC. CRC
/// mode replays the forged value as if the user wrote it; HMAC mode
/// refuses to open the database.
#[test]
fn wal_crc_repatch_forgery_replays_under_crc_rejected_under_hmac() {
    for mode in [Integrity::Crc, Integrity::Hmac] {
        let env = MemEnv::new();
        {
            let db = open_plain(opts(&env, mode), "db").unwrap();
            let w = WriteOptions::default();
            for i in 0..50 {
                db.put(&w, &key(i), &value("good", i)).unwrap();
            }
            db.simulate_process_crash();
        }
        let path = wal_path(&env, "db");
        let mut raw = env.raw_content(&path).unwrap();
        let hmac = mode == Integrity::Hmac;
        let header = if hmac { 23 } else { 7 };
        let target = value("good", 7);
        let pos = raw
            .windows(target.len())
            .position(|w| w == target.as_slice())
            .expect("WAL carries the plaintext value in plain mode");
        raw[pos..pos + 4].copy_from_slice(b"evil");
        let (start, len, ty) = *wal_records(&raw, hmac)
            .iter()
            .find(|(s, l, _)| *s <= pos && pos < s + header + l)
            .expect("value lives inside a record");
        let mut check = Vec::with_capacity(1 + len);
        check.push(ty);
        check.extend_from_slice(&raw[start + header..start + header + len]);
        let crc = crc32c_masked(crc32c(&check));
        raw[start..start + 4].copy_from_slice(&crc.to_le_bytes());
        env.set_raw_content(&path, raw).unwrap();

        match mode {
            Integrity::Crc => {
                let db = open_plain(opts(&env, mode), "db").unwrap();
                let got = db.get(&ReadOptions::new(), &key(7)).unwrap();
                assert_eq!(
                    got,
                    Some(value("evil", 7)),
                    "CRC mode replays the forged WAL record silently"
                );
            }
            Integrity::Hmac => {
                let e = open_plain(opts(&env, mode), "db").err().expect("open must fail");
                assert!(is_iv(&e), "recovery must reject the forged record: {e}");
            }
        }
    }
}

/// Replay attack: duplicate an earlier record verbatim at the tail of the
/// WAL. Its CRC (and even its tag) are genuine, so CRC mode accepts the
/// replay; the HMAC fragment counter binds each record to its position
/// and rejects it.
#[test]
fn wal_record_replay_accepted_under_crc_rejected_under_hmac() {
    for mode in [Integrity::Crc, Integrity::Hmac] {
        let env = MemEnv::new();
        {
            let db = open_plain(opts(&env, mode), "db").unwrap();
            let w = WriteOptions::default();
            for i in 0..50 {
                db.put(&w, &key(i), &value("good", i)).unwrap();
            }
            db.simulate_process_crash();
        }
        let path = wal_path(&env, "db");
        let mut raw = env.raw_content(&path).unwrap();
        let hmac = mode == Integrity::Hmac;
        let header = if hmac { 23 } else { 7 };
        let (start, len, _) = wal_records(&raw, hmac)[0];
        let dup = raw[start..start + header + len].to_vec();
        raw.extend_from_slice(&dup);
        env.set_raw_content(&path, raw).unwrap();

        match mode {
            Integrity::Crc => {
                let db = open_plain(opts(&env, mode), "db").unwrap();
                assert!(
                    db.get(&ReadOptions::new(), &key(0)).unwrap().is_some(),
                    "CRC mode accepted the replayed record and recovered"
                );
            }
            Integrity::Hmac => {
                let e = open_plain(opts(&env, mode), "db").err().expect("open must fail");
                assert!(is_iv(&e), "counter binding must reject the replay: {e}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Encrypted modes: the attacker cannot parse structure, but CTR is
// malleable — a ciphertext flip is a plaintext flip at the same offset.
// ---------------------------------------------------------------------

/// EncFS: flip one ciphertext byte in the SST body. The decrypted
/// plaintext flips at the same position; HMAC (over plaintext) catches it
/// as a violation, CRC as mere corruption.
#[test]
fn encfs_ciphertext_bitflip_detected() {
    for (mode, want_iv) in [(Integrity::Crc, false), (Integrity::Hmac, true)] {
        let env = MemEnv::new();
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        {
            let db = open_encfs(opts(&env, mode), "db", dek.clone(), 512).unwrap();
            fill(&db, "good", N);
        }
        let path = sst_paths(&env, "db").remove(0);
        let mut raw = env.raw_content(&path).unwrap();
        assert_eq!(&raw[..8], b"SHLDENCF", "EncFS files carry the encryption header");
        assert!(!raw.windows(4).any(|w| w == b"good"), "ciphertext must not leak plaintext");
        // Plaintext offset 8 = ciphertext offset 64 + 8: inside data block 0.
        raw[64 + 8] ^= 0x01;
        env.set_raw_content(&path, raw).unwrap();

        let db = open_encfs(opts(&env, mode), "db", dek, 512).unwrap();
        let e = first_get_error(&db, N).expect("flip must not read back clean");
        if want_iv {
            assert!(is_iv(&e), "encfs+hmac must classify the flip as a violation: {e}");
        } else {
            assert!(matches!(e, Error::Corruption(_)), "encfs+crc sees corruption: {e}");
        }
    }
}

/// SHIELD: same CTR-malleability attack against per-file-DEK encryption;
/// the MAC subkey is derived from the file DEK, so verification works
/// without any extra key distribution.
#[test]
fn shield_ciphertext_bitflip_detected() {
    for (mode, want_iv) in [(Integrity::Crc, false), (Integrity::Hmac, true)] {
        let env = MemEnv::new();
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let sopts = ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk");
        {
            let db = open_shield(opts(&env, mode), "db", sopts.clone()).unwrap();
            fill(&db, "good", N);
        }
        let path = sst_paths(&env, "db").remove(0);
        let mut raw = env.raw_content(&path).unwrap();
        assert_eq!(&raw[..8], b"SHLDENCF", "SHIELD SSTs carry the encryption header");
        raw[64 + 8] ^= 0x01;
        env.set_raw_content(&path, raw).unwrap();

        let db = open_shield(opts(&env, mode), "db", sopts).unwrap();
        let e = first_get_error(&db, N).expect("flip must not read back clean");
        if want_iv {
            assert!(is_iv(&e), "shield+hmac must classify the flip as a violation: {e}");
        } else {
            assert!(matches!(e, Error::Corruption(_)), "shield+crc sees corruption: {e}");
        }
    }
}

/// Truncation fails loudly in every mode (any error class is acceptable:
/// a truncated file is indistinguishable from a torn write).
#[test]
fn truncated_sst_errors_in_every_mode() {
    // plain
    let env = MemEnv::new();
    {
        let db = open_plain(opts(&env, Integrity::Hmac), "db").unwrap();
        fill(&db, "good", N);
    }
    let path = sst_paths(&env, "db").remove(0);
    let raw = env.raw_content(&path).unwrap();
    env.set_raw_content(&path, raw[..raw.len() / 2].to_vec()).unwrap();
    let db = open_plain(opts(&env, Integrity::Hmac), "db").unwrap();
    assert!(first_get_error(&db, N).is_some(), "plain: truncation must error");
    drop(db);

    // shield
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let sopts = ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk");
    {
        let db = open_shield(opts(&env, Integrity::Hmac), "db", sopts.clone()).unwrap();
        fill(&db, "good", N);
    }
    let path = sst_paths(&env, "db").remove(0);
    let raw = env.raw_content(&path).unwrap();
    env.set_raw_content(&path, raw[..raw.len() / 2].to_vec()).unwrap();
    let db = open_shield(opts(&env, Integrity::Hmac), "db", sopts).unwrap();
    assert!(first_get_error(&db, N).is_some(), "shield: truncation must error");
}

// ---------------------------------------------------------------------
// Format migration and the documented limitation.
// ---------------------------------------------------------------------

/// v1 files written under CRC mode stay readable after switching the
/// engine to HMAC mode; each unverifiable file bumps the
/// `integrity_unprotected_files` gauge instead of erroring.
#[test]
fn legacy_v1_files_readable_under_hmac_and_counted_unprotected() {
    let env = MemEnv::new();
    {
        let db = open_plain(opts(&env, Integrity::Crc), "db").unwrap();
        fill(&db, "good", N);
    }
    let db = open_plain(opts(&env, Integrity::Hmac), "db").unwrap();
    assert!(first_get_error(&db, N).is_none(), "v1 files must stay readable");
    let snap = db.statistics().snapshot();
    assert!(
        snap.integrity_unprotected_files > 0,
        "unverified legacy files must be visible in the gauge"
    );
}

/// Negative control: rolling the whole directory back to an earlier
/// consistent snapshot is NOT detected — per-file MACs cannot prove
/// freshness. Documented out of scope (needs an external trusted root,
/// e.g. the KDS storing a directory digest).
#[test]
fn whole_directory_rollback_is_undetected_by_design() {
    let env = MemEnv::new();
    {
        let db = open_plain(opts(&env, Integrity::Hmac), "db").unwrap();
        fill(&db, "good", 300);
    }
    // Snapshot T1: every file's raw bytes.
    let t1: Vec<(String, Vec<u8>)> = env
        .list_dir("db")
        .unwrap()
        .into_iter()
        .map(|n| {
            let p = format!("db/{n}");
            let raw = env.raw_content(&p).unwrap();
            (p, raw)
        })
        .collect();
    // T2: overwrite everything and add new keys.
    {
        let db = open_plain(opts(&env, Integrity::Hmac), "db").unwrap();
        let w = WriteOptions::default();
        for i in 0..600 {
            db.put(&w, &key(i), &value("newer", i)).unwrap();
        }
        db.compact_all().unwrap();
    }
    // Roll back: delete files created after T1, restore T1 contents.
    let t1_names: Vec<&str> = t1.iter().map(|(p, _)| p.as_str()).collect();
    for n in env.list_dir("db").unwrap() {
        let p = format!("db/{n}");
        if !t1_names.contains(&p.as_str()) {
            env.remove_file(&p).unwrap();
        }
    }
    for (p, raw) in t1 {
        if env.raw_content(&p).is_err() {
            drop(env.new_writable_file(&p, FileKind::Other).unwrap());
        }
        env.set_raw_content(&p, raw).unwrap();
    }

    let db = open_plain(opts(&env, Integrity::Hmac), "db").unwrap();
    let r = ReadOptions::new();
    assert_eq!(
        db.get(&r, &key(0)).unwrap(),
        Some(value("good", 0)),
        "rollback serves stale-but-authentic data"
    );
    assert_eq!(db.get(&r, &key(500)).unwrap(), None, "post-snapshot writes are gone");
    assert!(db.background_error().is_none(), "and nothing flags it — the documented gap");
}

