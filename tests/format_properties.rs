//! Property-based tests on the on-disk formats and crypto primitives:
//! arbitrary data must round-trip through blocks, WAL records, write
//! batches, and the seekable ciphers.

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;
use shield_crypto::{Algorithm, CipherContext, Dek, NONCE_LEN};
use shield_env::{Env, FileKind, MemEnv};
use shield_lsm::iter::InternalIterator;
use shield_lsm::memtable::MemTable;
use shield_lsm::sst::block::{Block, BlockBuilder};
use shield_lsm::sst::builder::{TableBuilder, TableBuilderOptions};
use shield_lsm::sst::reader::Table;
use shield_lsm::types::{extract_user_key, make_internal_key, ValueType};
use shield_lsm::wal::{LogReader, LogWriter};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// CTR/ChaCha20: decrypting any sub-range at its absolute offset
    /// recovers the plaintext.
    #[test]
    fn cipher_random_access_equivalence(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
        algo_choice in 0u8..2,
    ) {
        let algo = if algo_choice == 0 { Algorithm::Aes128Ctr } else { Algorithm::ChaCha20 };
        let dek = Dek::generate(algo);
        let nonce = [3u8; NONCE_LEN];
        let ctx = CipherContext::new(&dek, &nonce);
        let mut enc = data.clone();
        ctx.encrypt_at(0, &mut enc);
        let start = ((data.len() as f64) * start_frac) as usize;
        let len = (((data.len() - start) as f64) * len_frac) as usize;
        let mut slice = enc[start..start + len].to_vec();
        ctx.decrypt_at(start as u64, &mut slice);
        prop_assert_eq!(&slice[..], &data[start..start + len]);
    }

    /// WAL: arbitrary records round-trip exactly, in order.
    #[test]
    fn wal_roundtrip(records in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..5000), 0..40)) {
        let env = MemEnv::new();
        {
            let file = env.new_writable_file("log", FileKind::Wal).unwrap();
            let mut w = LogWriter::new(file);
            for rec in &records {
                w.add_record(rec).unwrap();
            }
            w.sync().unwrap();
        }
        let file = env.new_sequential_file("log", FileKind::Wal).unwrap();
        let mut r = LogReader::new(file);
        let mut out = Vec::new();
        while let Some(rec) = r.read_record().unwrap() {
            out.push(rec);
        }
        prop_assert_eq!(out, records);
    }

    /// WAL: any truncation yields a prefix of the records (no corruption
    /// errors, no reordering, no phantom records).
    #[test]
    fn wal_truncation_yields_prefix(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..300), 1..30),
        cut_frac in 0.0f64..1.0,
    ) {
        let env = MemEnv::new();
        {
            let file = env.new_writable_file("log", FileKind::Wal).unwrap();
            let mut w = LogWriter::new(file);
            for rec in &records {
                w.add_record(rec).unwrap();
            }
            w.sync().unwrap();
        }
        let raw = env.raw_content("log").unwrap();
        let cut = (raw.len() as f64 * cut_frac) as usize;
        {
            let mut f = env.new_writable_file("log", FileKind::Wal).unwrap();
            f.append(&raw[..cut]).unwrap();
            f.sync().unwrap();
        }
        let file = env.new_sequential_file("log", FileKind::Wal).unwrap();
        let mut r = LogReader::new(file);
        let mut out = Vec::new();
        while let Ok(Some(rec)) = r.read_record() {
            out.push(rec);
        }
        prop_assert!(out.len() <= records.len());
        for (got, want) in out.iter().zip(records.iter()) {
            prop_assert_eq!(got, want);
        }
    }

    /// Blocks: sorted entries round-trip and seeks land correctly.
    #[test]
    fn block_roundtrip_and_seek(
        mut keys in proptest::collection::btree_set(
            proptest::collection::vec(any::<u8>(), 1..40), 1..100),
        restart in 1usize..20,
        probe in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = std::mem::take(&mut keys)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (make_internal_key(&k, 7, ValueType::Value), format!("v{i}").into_bytes()))
            .collect();
        let mut b = BlockBuilder::new(restart);
        for (k, v) in &entries {
            b.add(k, v);
        }
        let block = Arc::new(Block::from_raw(Bytes::from(b.finish())));
        // Full scan.
        let mut it = block.iter();
        it.seek_to_first();
        for (k, v) in &entries {
            prop_assert!(it.valid());
            prop_assert_eq!(it.key(), &k[..]);
            prop_assert_eq!(it.value(), &v[..]);
            it.next();
        }
        prop_assert!(!it.valid());
        // Seek: first entry with key >= probe.
        let probe_ikey = make_internal_key(&probe, u64::MAX >> 8, ValueType::Value);
        it.seek(&probe_ikey);
        let expected = entries.iter().find(|(k, _)| extract_user_key(k) >= &probe[..]);
        match expected {
            Some((k, _)) => {
                prop_assert!(it.valid());
                prop_assert_eq!(it.key(), &k[..]);
            }
            None => prop_assert!(!it.valid()),
        }
    }

    /// Memtable behaves like a last-writer-wins map.
    #[test]
    fn memtable_matches_map(ops in proptest::collection::vec(
        (any::<u8>(), proptest::option::of(proptest::collection::vec(any::<u8>(), 0..20))),
        1..200)) {
        let mt = MemTable::new(1);
        let mut model = std::collections::HashMap::new();
        for (seq, (k, v)) in ops.iter().enumerate() {
            let key = format!("k{k:03}").into_bytes();
            match v {
                Some(value) => {
                    mt.add(seq as u64 + 1, ValueType::Value, &key, value);
                    model.insert(key, Some(value.clone()));
                }
                None => {
                    mt.add(seq as u64 + 1, ValueType::Deletion, &key, b"");
                    model.insert(key, None);
                }
            }
        }
        for (key, want) in &model {
            use shield_lsm::memtable::LookupResult;
            match (mt.get(key, u64::MAX >> 8), want) {
                (LookupResult::Found(v), Some(w)) => prop_assert_eq!(&v, w),
                (LookupResult::Deleted, None) => {}
                (got, want) => prop_assert!(false, "mismatch: {:?} vs {:?}", got, want),
            }
        }
    }

    /// SST: sorted entries written through a table round-trip via both
    /// point gets and full iteration, encrypted or not.
    #[test]
    fn table_roundtrip(
        keys in proptest::collection::btree_set(1u32..100_000, 1..300),
        block_size in 64usize..2048,
    ) {
        let env = MemEnv::new();
        let file = env.new_writable_file("t.sst", FileKind::Sst).unwrap();
        let opts = TableBuilderOptions { block_size, ..TableBuilderOptions::default() };
        let mut b = TableBuilder::new(file, opts);
        let entries: Vec<(Vec<u8>, Vec<u8>)> = keys
            .iter()
            .map(|k| {
                (
                    make_internal_key(format!("{k:08}").as_bytes(), 5, ValueType::Value),
                    format!("value-{k}").into_bytes(),
                )
            })
            .collect();
        for (k, v) in &entries {
            b.add(k, v).unwrap();
        }
        b.finish().unwrap();
        let file = env.new_random_access_file("t.sst", FileKind::Sst).unwrap();
        let table = Arc::new(Table::open(file, 1, None).unwrap());
        // Point lookups.
        for k in keys.iter().take(20) {
            let got = table.get(format!("{k:08}").as_bytes(), 100).unwrap();
            prop_assert!(got.is_some(), "missing {k}");
            prop_assert_eq!(got.unwrap().1, format!("value-{k}").into_bytes());
        }
        // Absent key.
        prop_assert!(table.get(b"99999999x", 100).unwrap().is_none());
        // Full iteration in order.
        let mut it = table.iter();
        it.seek_to_first();
        let mut n = 0;
        while it.valid() {
            prop_assert_eq!(it.key(), &entries[n].0[..]);
            n += 1;
            it.next();
        }
        prop_assert_eq!(n, entries.len());
    }
}
