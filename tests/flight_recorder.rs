//! Flight-recorder coverage (PR 8): hierarchical trace spans, the
//! slow-op ring, the stall watchdog, windowed stats, and the debug
//! bundle — exercised end to end over simulated remote storage
//! ([`RemoteEnv`]) and injected env delays ([`FaultInjectionEnv`]).
//!
//! The acceptance shape from the issue: a cold SHIELD `multi_get(64)`
//! over remote storage must leave exactly one trace whose root is the
//! op, with at least two batched `read_window` spans beneath it whose
//! durations sum to no more than the op's wall time; when the slow-op
//! threshold sits below that latency the same op must land in the
//! slow-op ring with its span tree and PerfContext; a read pinned past
//! the watchdog deadline must be flagged *while still running*; and
//! `Db::debug_bundle()` must parse as one JSON document carrying all of
//! it.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use shield::{open_shield, ShieldDb, ShieldOptions};
use shield_core::{json, Event, EventListener};
use shield_env::{Env, FaultInjectionEnv, FaultOp, FileKind, MemEnv, NetworkModel, RemoteEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Options, ReadOptions, WriteOptions};

/// Captures every event name (and the rendered payload of the ones the
/// tests assert on) emitted by the engine.
#[derive(Default)]
struct Capture {
    events: Mutex<Vec<Event>>,
}

impl Capture {
    fn names(&self) -> Vec<&'static str> {
        self.events.lock().unwrap().iter().map(Event::name).collect()
    }

    fn find<F: Fn(&Event) -> bool>(&self, pred: F) -> Option<Event> {
        self.events.lock().unwrap().iter().find(|e| pred(e)).cloned()
    }
}

impl EventListener for Capture {
    fn on_event(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// One SHIELD instance over `env`, with small files/blocks so workloads
/// span several tables and many blocks.
struct Fixture {
    env: Arc<dyn Env>,
    kds: Arc<LocalKds>,
}

impl Fixture {
    fn new(env: Arc<dyn Env>) -> Self {
        Fixture { env, kds: Arc::new(LocalKds::new(KdsConfig::default())) }
    }

    fn base_opts(&self) -> Options {
        let mut opts =
            Options::new(self.env.clone()).with_write_buffer_size(16 << 10);
        opts.block_size = 256;
        opts.compaction.l0_compaction_trigger = 2;
        opts
    }

    fn open(&self, opts: Options) -> ShieldDb {
        open_shield(
            opts,
            "db",
            ShieldOptions::new(self.kds.clone() as Arc<dyn Kds>, ServerId(1), b"fr"),
        )
        .expect("open shield")
    }

    /// Writes `n` keys and compacts them into persistent tables, then
    /// closes the DB so the next open starts with a cold cache.
    fn populate(&self, n: u32) {
        let db = self.open(self.base_opts());
        let w = WriteOptions::default();
        for i in 0..n {
            let key = format!("key-{i:05}");
            db.db.put(&w, key.as_bytes(), format!("value-{i}").as_bytes()).unwrap();
        }
        db.db.compact_all().unwrap();
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("key-{i:05}").into_bytes()
}

/// The issue's acceptance shape: one cold SHIELD `multi_get(64)` over
/// remote storage yields one trace rooted at the op, with ≥ 2 batched
/// `read_window` spans whose durations sum to ≤ the op's wall time.
#[test]
fn cold_multi_get_trace_has_batched_window_spans() {
    let net = NetworkModel {
        rtt: Duration::from_micros(200),
        bandwidth_bytes_per_sec: Some(125_000_000),
        write_packet_bytes: 64 * 1024,
    };
    let fx = Fixture::new(Arc::new(RemoteEnv::new(Arc::new(MemEnv::new()), net)));
    fx.populate(256);

    let db = fx.open(fx.base_opts().with_tracing());
    let keys: Vec<Vec<u8>> = (0..256).step_by(4).take(64).map(key).collect();
    let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    let results = db.db.multi_get(&ReadOptions::new(), &refs);
    assert_eq!(results.len(), 64);
    for r in results {
        assert!(r.expect("multi_get slot").is_some());
    }

    let spans = db.db.trace_spans();
    let roots: Vec<_> =
        spans.iter().filter(|s| s.parent_id == 0 && s.name == "multi_get").collect();
    assert_eq!(roots.len(), 1, "expected exactly one multi_get trace, got {roots:?}");
    let root = roots[0];
    assert_eq!(root.span_id, 1, "root span id");

    let children: Vec<_> =
        spans.iter().filter(|s| s.trace_id == root.trace_id && s.parent_id != 0).collect();
    assert!(!children.is_empty(), "trace carried no child spans");
    let windows: Vec<_> = children.iter().filter(|s| s.name == "read_window").collect();
    assert!(
        windows.len() >= 2,
        "expected >= 2 batched read_window spans, got {}",
        windows.len()
    );
    for w in &windows {
        assert!(
            w.attrs.iter().any(|&(k, v)| k == "blocks" && v >= 1),
            "read_window span missing its blocks attribute: {w:?}"
        );
    }
    let window_nanos: u64 = windows.iter().map(|s| s.dur_nanos).sum();
    assert!(
        window_nanos <= root.dur_nanos,
        "window spans ({window_nanos} ns) exceed the op wall time ({} ns)",
        root.dur_nanos
    );
    // The batch fetch itself is recorded, with its window fan-out.
    assert!(
        children.iter().any(|s| s.name == "fetch_batch"
            && s.attrs.iter().any(|&(k, v)| k == "windows" && v >= 2)),
        "no fetch_batch span with a windows attribute in {children:?}"
    );
}

/// An op slower than `slow_op_threshold` (here: a cold get stalled by an
/// injected 10 ms env delay) must land in the slow-op ring with its span
/// tree and PerfContext, and emit a `slow_op` event.
#[test]
fn slow_op_captured_under_injected_delay() {
    let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
    let fx = Fixture::new(Arc::new(fenv.clone()));
    fx.populate(128);

    let capture = Arc::new(Capture::default());
    let opts = fx
        .base_opts()
        .with_slow_op_threshold(Duration::from_millis(2))
        .with_event_listener(capture.clone());
    let db = fx.open(opts);
    fenv.delay_n_times(FileKind::Sst, FaultOp::Read, Duration::from_millis(10), 8);
    assert!(db.db.get(&ReadOptions::new(), &key(17)).unwrap().is_some());
    fenv.disarm_all();

    let slow = db.db.slow_ops();
    let hit = slow
        .iter()
        .find(|s| s.op == "get")
        .unwrap_or_else(|| panic!("no slow get captured in {slow:?}"));
    assert!(
        hit.wall_nanos >= hit.threshold_nanos,
        "captured op beat its own threshold: {hit:?}"
    );
    assert!(hit.wall_nanos >= 10_000_000, "injected 10 ms delay missing from wall time");
    assert_eq!(hit.spans.first().map(|s| s.name), Some("get"), "span tree must start at root");
    assert!(
        hit.spans.iter().any(|s| s.parent_id != 0),
        "slow-op capture lost the child spans: {:?}",
        hit.spans
    );
    assert!(capture.names().contains(&"slow_op"), "no slow_op event emitted");
}

/// A read pinned past `watchdog_deadline` must be flagged by the
/// watchdog thread *while the op is still running*, with its live span
/// stack — and flagged exactly once.
#[test]
fn watchdog_flags_stuck_read() {
    let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
    let fx = Fixture::new(Arc::new(fenv.clone()));
    fx.populate(128);

    let capture = Arc::new(Capture::default());
    let opts = fx
        .base_opts()
        .with_watchdog_deadline(Duration::from_millis(40))
        .with_event_listener(capture.clone());
    let db = fx.open(opts);
    fenv.delay_always(FileKind::Sst, FaultOp::Read, Duration::from_millis(300));
    assert!(db.db.get(&ReadOptions::new(), &key(31)).unwrap().is_some());
    fenv.disarm_all();

    let flagged = capture
        .find(|e| matches!(e, Event::Watchdog { .. }))
        .expect("watchdog never fired for a 300 ms read against a 40 ms deadline");
    let Event::Watchdog { op, elapsed_micros, deadline_micros, stack, .. } = flagged else {
        unreachable!()
    };
    assert_eq!(op, "get");
    assert_eq!(deadline_micros, 40_000);
    assert!(elapsed_micros >= deadline_micros, "flagged before the deadline");
    assert!(stack.contains("get"), "live stack lost the root op: {stack:?}");
    let fired = capture.names().iter().filter(|n| **n == "watchdog").count();
    assert_eq!(fired, 1, "one stuck op must be flagged exactly once");
}

/// `stats_dump_period` must roll interval windows: counter deltas with
/// derived rates, a `stats_window` event per interval, and the window
/// objects surfaced through both `Db::metrics_windows()` and the
/// `windows` section of the metrics JSON.
#[test]
fn stats_windows_roll_with_rates() {
    let fx = Fixture::new(Arc::new(MemEnv::new()));
    let capture = Arc::new(Capture::default());
    let opts = fx
        .base_opts()
        .with_stats_dump_period(Duration::from_millis(20))
        .with_event_listener(capture.clone());
    let db = fx.open(opts);

    let w = WriteOptions::default();
    let deadline = std::time::Instant::now() + Duration::from_millis(160);
    let mut i = 0u32;
    while std::time::Instant::now() < deadline {
        db.db.put(&w, &key(i % 64), b"window-payload").unwrap();
        assert!(db.db.get(&ReadOptions::new(), &key(i % 64)).unwrap().is_some());
        i += 1;
        std::thread::sleep(Duration::from_millis(1));
    }

    let windows = db.db.metrics_windows();
    assert!(!windows.is_empty(), "no stats window rolled in 160 ms at a 20 ms period");
    let last = windows.last().unwrap();
    assert!(last.duration_micros > 0);
    assert!(last.delta("writes").unwrap_or(0) > 0, "interval writes delta empty: {last:?}");
    for rate in ["writes_per_sec", "reads_per_sec", "cache_hit_ratio", "stall_fraction"] {
        assert!(
            last.rates.iter().any(|(k, _)| *k == rate),
            "window missing rate {rate}: {last:?}"
        );
    }
    let writes_rate = last
        .rates
        .iter()
        .find(|(k, _)| *k == "writes_per_sec")
        .map(|&(_, v)| v)
        .unwrap();
    assert!(writes_rate > 0.0, "writes_per_sec must be positive under a write loop");
    assert!(capture.names().contains(&"stats_window"), "no stats_window event emitted");

    // The windows ride along in the stable metrics JSON.
    let report = json::parse(&db.db.metrics_report().to_json()).expect("metrics JSON parses");
    let arr = report.get("windows").and_then(|w| w.as_arr()).expect("windows array");
    assert!(!arr.is_empty());
    assert_eq!(
        arr[0].get("schema").and_then(|s| s.as_str()),
        Some("shield_metrics_window_v1")
    );
}

/// `Db::debug_bundle()` is one parseable JSON document: the metrics
/// report, the stats windows, the slow-op ring, the trace ring, and the
/// LOG tail.
#[test]
fn debug_bundle_is_one_parseable_document() {
    let fx = Fixture::new(Arc::new(MemEnv::new()));
    fx.populate(128);
    let opts = fx
        .base_opts()
        .with_slow_op_threshold(Duration::ZERO) // every op is "slow"
        .with_stats_dump_period(Duration::from_millis(10));
    let db = fx.open(opts);
    let w = WriteOptions::default();
    for i in 0..32 {
        db.db.put(&w, &key(i), b"bundle").unwrap();
    }
    assert!(db.db.get(&ReadOptions::new(), &key(7)).unwrap().is_some());
    std::thread::sleep(Duration::from_millis(30));

    let bundle = db.db.debug_bundle();
    let doc = json::parse(&bundle).expect("debug bundle parses as JSON");
    assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("shield_debug_bundle_v1"));
    for section in ["metrics", "windows", "slow_ops", "trace_spans", "log_tail"] {
        assert!(doc.get(section).is_some(), "bundle missing section {section}");
    }
    assert_eq!(
        doc.get("metrics").and_then(|m| m.get("schema")).and_then(|s| s.as_str()),
        Some("shield_metrics_v1")
    );
    let slow = doc.get("slow_ops").and_then(|s| s.as_arr()).expect("slow_ops array");
    assert!(!slow.is_empty(), "zero threshold captured no slow ops");
    let spans = doc.get("trace_spans").and_then(|s| s.as_arr()).expect("trace_spans array");
    assert!(!spans.is_empty(), "trace ring empty despite traced ops");
    let tail = doc.get("log_tail").and_then(|t| t.as_str()).expect("log_tail string");
    assert!(tail.contains("db_open"), "LOG tail lost the open event: {tail:?}");
}

/// Tracing off (the default) records nothing and allocates nothing per
/// op: the rings stay empty however hard the DB is driven.
#[test]
fn disabled_tracing_records_nothing() {
    let fx = Fixture::new(Arc::new(MemEnv::new()));
    fx.populate(64);
    let db = fx.open(fx.base_opts());
    let w = WriteOptions::default();
    for i in 0..64 {
        db.db.put(&w, &key(i), b"quiet").unwrap();
        assert!(db.db.get(&ReadOptions::new(), &key(i)).unwrap().is_some());
    }
    assert!(db.db.trace_spans().is_empty(), "trace ring must stay empty when disabled");
    assert!(db.db.slow_ops().is_empty(), "slow-op ring must stay empty when disabled");
}
