//! Differential coverage for `Db::multi_get` (PR 7): a batched lookup
//! must be observationally identical to N serial `get`s — slot for slot
//! — in all three encryption modes (plain / EncFS / SHIELD), including:
//!
//! - keys resident in the active/immutable memtables (never fetched),
//! - keys shadowed by tombstones at any layer,
//! - snapshot reads (`ReadOptions::snapshot_seq`) taken mid-history,
//! - absent keys, and
//! - mid-batch injected read faults: a `FaultInjectionEnv` failing one
//!   underlying SST read must error only the slots that needed that
//!   file's data, leave every neighboring slot's bytes intact, never
//!   park the engine (I/O faults are retryable), and succeed on retry
//!   once disarmed.

use std::sync::Arc;

use proptest::prelude::*;
use shield::{open_encfs, open_plain, open_shield, EncFsDb, ShieldDb, ShieldOptions};
use shield_crypto::{Algorithm, Dek};
use shield_env::{FaultInjectionEnv, FaultOp, FileKind, MemEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Db, Options, ReadOptions, WriteOptions};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Plain,
    EncFs,
    Shield,
}

const MODES: [Mode; 3] = [Mode::Plain, Mode::EncFs, Mode::Shield];

enum Handle {
    Plain(Db),
    EncFs(EncFsDb),
    Shield(ShieldDb),
}

impl Handle {
    fn db(&self) -> &Db {
        match self {
            Handle::Plain(db) => db,
            Handle::EncFs(db) => &db.db,
            Handle::Shield(db) => &db.db,
        }
    }
}

/// One mode's persistent state: the fault-injection env holding the
/// files plus the key material that must survive reopens.
struct TestDb {
    fenv: FaultInjectionEnv,
    kds: Arc<LocalKds>,
    dek: Dek,
    mode: Mode,
}

impl TestDb {
    fn new(mode: Mode) -> Self {
        TestDb {
            fenv: FaultInjectionEnv::new(Arc::new(MemEnv::new())),
            kds: Arc::new(LocalKds::new(KdsConfig::default())),
            dek: Dek::generate(Algorithm::Aes128Ctr),
            mode,
        }
    }

    /// Opens (or reopens, with a cold block cache) the database.
    fn open(&self) -> Handle {
        let mut opts =
            Options::new(Arc::new(self.fenv.clone())).with_write_buffer_size(16 << 10);
        // Small files and an eager trigger so batches span several
        // levels and tables; tiny blocks so they span many blocks.
        opts.block_size = 256;
        opts.compaction.l0_compaction_trigger = 2;
        opts.compaction.target_file_size = 32 << 10;
        match self.mode {
            Mode::Plain => Handle::Plain(open_plain(opts, "db").expect("open plain")),
            Mode::EncFs => {
                Handle::EncFs(open_encfs(opts, "db", self.dek.clone(), 0).expect("open encfs"))
            }
            Mode::Shield => Handle::Shield(
                open_shield(
                    opts,
                    "db",
                    ShieldOptions::new(self.kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk"),
                )
                .expect("open shield"),
            ),
        }
    }
}

fn key_bytes(i: u8) -> Vec<u8> {
    format!("key{i:03}").into_bytes()
}

/// Asserts `multi_get(keys)` ≡ serial `get`s, slot for slot, at `ropts`.
fn assert_batch_matches_serial(db: &Db, ropts: &ReadOptions, keys: &[Vec<u8>], label: &str) {
    let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    let batched = db.multi_get(ropts, &refs);
    assert_eq!(batched.len(), keys.len());
    for (key, got) in keys.iter().zip(batched) {
        let serial = db.get(ropts, key).unwrap_or_else(|e| panic!("serial get failed: {e}"));
        assert_eq!(
            got.expect("batched slot errored where serial get succeeded"),
            serial,
            "{label}: divergence on {:?}",
            String::from_utf8_lossy(key)
        );
    }
}

/// One scripted history: puts/deletes before a flush+compact boundary
/// (persistent layers), a snapshot, then more puts/deletes that stay in
/// the memtable. Batched reads at both the latest state and the snapshot
/// must match serial reads exactly.
fn run_history(
    mode: Mode,
    persistent: &[(u8, bool)],
    resident: &[(u8, bool)],
    queries: &[u8],
) {
    let t = TestDb::new(mode);
    let handle = t.open();
    let db = handle.db();
    let w = WriteOptions::default();
    for &(k, is_delete) in persistent {
        if is_delete {
            db.delete(&w, &key_bytes(k)).unwrap();
        } else {
            db.put(&w, &key_bytes(k), format!("v1-{k}").as_bytes()).unwrap();
        }
    }
    db.compact_all().unwrap();
    let snap = db.snapshot();
    for &(k, is_delete) in resident {
        if is_delete {
            db.delete(&w, &key_bytes(k)).unwrap();
        } else {
            db.put(&w, &key_bytes(k), format!("v2-{k}").as_bytes()).unwrap();
        }
    }
    let keys: Vec<Vec<u8>> = queries.iter().map(|&k| key_bytes(k)).collect();
    assert_batch_matches_serial(db, &ReadOptions::new(), &keys, "latest");
    assert_batch_matches_serial(db, &snap.read_options(), &keys, "snapshot");
    // And with fill_cache off (reads around the cache).
    let ropts = ReadOptions { snapshot_seq: None, fill_cache: false };
    assert_batch_matches_serial(db, &ropts, &keys, "no-fill");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Arbitrary histories and query batches (duplicate and absent keys
    /// included), differentially checked in all three modes.
    #[test]
    fn multi_get_equals_serial_gets(
        persistent in proptest::collection::vec((0u8..48, any::<bool>()), 8..64),
        resident in proptest::collection::vec((0u8..48, any::<bool>()), 0..24),
        queries in proptest::collection::vec(0u8..64, 1..48),
    ) {
        for mode in MODES {
            run_history(mode, &persistent, &resident, &queries);
        }
    }
}

/// A large deterministic batch over cold multi-level storage: the batch
/// must engage the batched read path (nonzero `batched_reads` ticker
/// carrying several requests per submission) and still match serial gets.
#[test]
fn large_cold_batch_engages_batched_reads() {
    for mode in MODES {
        let t = TestDb::new(mode);
        {
            let handle = t.open();
            let db = handle.db();
            let w = WriteOptions::default();
            for i in 0..=255u8 {
                db.put(&w, &key_bytes(i), format!("value-{i}").as_bytes()).unwrap();
            }
            db.compact_all().unwrap();
        }
        // Reopen: cold block cache, everything on "disk".
        let handle = t.open();
        let db = handle.db();
        let keys: Vec<Vec<u8>> = (0..=255u8).step_by(3).map(key_bytes).collect();
        assert_batch_matches_serial(db, &ReadOptions::new(), &keys, "cold batch");
        let snap = db.statistics().snapshot();
        assert!(snap.multi_gets >= 1, "{mode:?}: multi_gets ticker never bumped");
        assert!(snap.batched_reads > 0, "{mode:?}: batch never hit the batched read path");
        assert!(
            snap.batch_read_requests > snap.batched_reads,
            "{mode:?}: batches carried {} requests over {} submissions — no batching",
            snap.batch_read_requests,
            snap.batched_reads
        );
    }
}

/// An injected read fault mid-batch must produce per-slot errors only,
/// leave neighboring slots byte-intact, not park the engine, and clear
/// on retry after the fault is disarmed.
#[test]
fn injected_fault_errors_only_affected_slots() {
    for mode in MODES {
        let t = TestDb::new(mode);
        {
            let handle = t.open();
            let db = handle.db();
            let w = WriteOptions::default();
            for i in 0..=255u8 {
                db.put(&w, &key_bytes(i), format!("value-{i}").as_bytes()).unwrap();
            }
            db.compact_all().unwrap();
        }
        // Reopen cold so the batch must actually read, then arm exactly
        // one SST read fault.
        let handle = t.open();
        let db = handle.db();
        let keys: Vec<Vec<u8>> = (0..=255u8).step_by(2).map(key_bytes).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        t.fenv.error_n_times(FileKind::Sst, FaultOp::Read, 1);
        let results = db.multi_get(&ReadOptions::new(), &refs);
        t.fenv.disarm_all();
        assert_eq!(
            t.fenv.stats().injected_for(FaultOp::Read),
            1,
            "{mode:?}: the armed fault never fired"
        );
        let failed: Vec<usize> =
            (0..results.len()).filter(|&i| results[i].is_err()).collect();
        assert!(!failed.is_empty(), "{mode:?}: injected read fault surfaced in no slot");
        // Neighbors are intact: every Ok slot must carry the exact value.
        for (i, (key, result)) in keys.iter().zip(&results).enumerate() {
            if let Ok(got) = result {
                let expect = format!("value-{}", i * 2).into_bytes();
                assert_eq!(
                    got.as_deref(),
                    Some(expect.as_slice()),
                    "{mode:?}: fault corrupted neighboring slot {:?}",
                    String::from_utf8_lossy(key)
                );
            }
        }
        // An I/O fault is transient: the engine must not park...
        assert!(
            db.background_error().is_none(),
            "{mode:?}: retryable I/O fault parked the engine"
        );
        // ...and the failed slots must succeed once the fault is gone.
        let retry_keys: Vec<&[u8]> = failed.iter().map(|&i| keys[i].as_slice()).collect();
        let retried = db.multi_get(&ReadOptions::new(), &retry_keys);
        for (&i, result) in failed.iter().zip(retried) {
            let expect = format!("value-{}", i * 2).into_bytes();
            assert_eq!(
                result.unwrap_or_else(|e| panic!("{mode:?}: retry still failing: {e}")).as_deref(),
                Some(expect.as_slice()),
                "{mode:?}: retry returned wrong bytes for slot {i}"
            );
        }
    }
}
