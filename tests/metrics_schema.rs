//! Golden-key contract for the stable observability JSON (PR 8): the
//! exact key sets — names *and* order — of `shield_metrics_v1`, its
//! `shield_metrics_window_v1` window objects, and the flight-recorder
//! span/slow-op objects inside `shield_debug_bundle_v1`.
//!
//! These documents are committed as sidecars (`OBS_metrics.json`) and
//! consumed by the bench driver; any key rename, addition, or
//! reordering must be deliberate and show up here as a diff. The
//! ticker/gauge split is part of the contract: PR 8 reclassified the
//! mirrored-but-monotonic cache/readahead/fault/resolver counters as
//! tickers, leaving only the three true point-in-time gauges.

use std::sync::Arc;
use std::time::Duration;

use shield::{open_shield, ShieldDb, ShieldOptions};
use shield_core::{json, JsonValue};
use shield_env::MemEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Options, ReadOptions, WriteOptions, OP_TYPES};

/// Top-level keys of `shield_metrics_v1`, in emission order.
const TOP_KEYS: [&str; 10] = [
    "schema",
    "levels",
    "total_files",
    "total_bytes",
    "write_amplification",
    "read_amplification",
    "latencies_us",
    "tickers",
    "gauges",
    "windows",
];

/// Every ticker (monotonic counter), in declaration order. Mirrored
/// values (`block_cache_*`, `readahead_*`, `env_faults_injected`,
/// `resolver_*`) are tickers too: they only ever grow, so interval
/// deltas are meaningful.
const TICKER_KEYS: [&str; 42] = [
    "writes",
    "write_groups",
    "wal_bytes",
    "wal_syncs",
    "gets",
    "gets_found",
    "flushes",
    "flush_bytes",
    "compactions",
    "compaction_micros",
    "subcompactions",
    "subcompaction_micros",
    "compaction_bytes_read",
    "compaction_bytes_written",
    "sst_files_created",
    "sst_files_deleted",
    "bloom_useful",
    "write_stalls",
    "stall_micros",
    "bg_retries",
    "resumes",
    "integrity_checks",
    "integrity_failures",
    "multi_gets",
    "batched_reads",
    "batch_read_requests",
    "block_cache_hits",
    "block_cache_misses",
    "block_cache_data_hits",
    "block_cache_data_misses",
    "block_cache_index_hits",
    "block_cache_index_misses",
    "block_cache_filter_hits",
    "block_cache_filter_misses",
    "block_cache_singleflight_waits",
    "block_cache_oversized_bypass",
    "readahead_issued",
    "readahead_useful",
    "env_faults_injected",
    "resolver_retries",
    "resolver_failovers",
    "resolver_degraded_hits",
];

/// The only true gauges: point-in-time readings that can shrink.
const GAUGE_KEYS: [&str; 3] =
    ["block_cache_pinned_bytes", "integrity_unprotected_files", "env_inflight_reads"];

/// Keys of one `shield_metrics_window_v1` object, in emission order.
const WINDOW_KEYS: [&str; 6] =
    ["schema", "seq", "end_unix_micros", "duration_micros", "deltas", "rates"];

/// Keys of one trace-span object, in emission order.
const SPAN_KEYS: [&str; 7] =
    ["trace_id", "span_id", "parent_id", "name", "start_rel_micros", "dur_nanos", "attrs"];

/// Keys of one slow-op capture, in emission order.
const SLOW_OP_KEYS: [&str; 8] = [
    "op",
    "trace_id",
    "wall_nanos",
    "threshold_nanos",
    "unix_micros",
    "dropped_spans",
    "perf",
    "spans",
];

fn open_db(opts_tweak: impl FnOnce(Options) -> Options) -> ShieldDb {
    let mut opts =
        Options::new(Arc::new(MemEnv::new())).with_write_buffer_size(16 << 10);
    opts.block_size = 256;
    opts.compaction.l0_compaction_trigger = 2;
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    open_shield(
        opts_tweak(opts),
        "db",
        ShieldOptions::new(kds as Arc<dyn Kds>, ServerId(1), b"schema"),
    )
    .expect("open shield")
}

fn workload(db: &ShieldDb) {
    let w = WriteOptions::default();
    for i in 0..512u32 {
        let key = format!("key-{i:05}");
        db.db.put(&w, key.as_bytes(), format!("value-{i}").as_bytes()).unwrap();
    }
    db.db.compact_all().unwrap();
    let r = ReadOptions::new();
    for i in (0..512u32).step_by(17) {
        let key = format!("key-{i:05}");
        assert!(db.db.get(&r, key.as_bytes()).unwrap().is_some());
    }
}

fn assert_exact_keys(value: &JsonValue, expect: &[&str], what: &str) {
    assert_eq!(value.keys(), expect, "{what}: key set or order drifted");
}

#[test]
fn metrics_v1_key_set_is_golden() {
    let db = open_db(|o| o);
    workload(&db);
    let doc = json::parse(&db.db.metrics_report().to_json()).expect("metrics JSON parses");

    assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("shield_metrics_v1"));
    assert_exact_keys(&doc, &TOP_KEYS, "shield_metrics_v1 top level");
    let lats = doc.get("latencies_us").expect("latencies_us");
    assert_exact_keys(lats, &OP_TYPES, "latencies_us ops");
    for op in OP_TYPES {
        assert_exact_keys(
            lats.get(op).unwrap(),
            &["count", "mean", "p50", "p99", "p999", "max"],
            &format!("latencies_us.{op}"),
        );
    }
    assert_exact_keys(doc.get("tickers").expect("tickers"), &TICKER_KEYS, "tickers");
    assert_exact_keys(doc.get("gauges").expect("gauges"), &GAUGE_KEYS, "gauges");
    for level in doc.get("levels").and_then(JsonValue::as_arr).expect("levels") {
        assert_exact_keys(level, &["level", "files", "bytes"], "levels[i]");
    }
}

#[test]
fn window_v1_key_set_is_golden() {
    let db = open_db(|o| o.with_stats_dump_period(Duration::from_millis(15)));
    workload(&db);
    std::thread::sleep(Duration::from_millis(50));
    let doc = json::parse(&db.db.metrics_report().to_json()).expect("metrics JSON parses");
    let windows = doc.get("windows").and_then(JsonValue::as_arr).expect("windows");
    assert!(!windows.is_empty(), "no window rolled at a 15 ms period");
    for w in windows {
        assert_eq!(
            w.get("schema").and_then(JsonValue::as_str),
            Some("shield_metrics_window_v1")
        );
        assert_exact_keys(w, &WINDOW_KEYS, "shield_metrics_window_v1");
        // Deltas cover exactly the tickers (gauges cannot be diffed).
        assert_exact_keys(w.get("deltas").unwrap(), &TICKER_KEYS, "window deltas");
    }
}

#[test]
fn trace_and_slow_op_key_sets_are_golden() {
    let db = open_db(|o| o.with_slow_op_threshold(Duration::ZERO));
    workload(&db);
    let doc = json::parse(&db.db.debug_bundle()).expect("debug bundle parses");
    let spans = doc.get("trace_spans").and_then(JsonValue::as_arr).expect("trace_spans");
    assert!(!spans.is_empty());
    for s in spans {
        assert_exact_keys(s, &SPAN_KEYS, "trace span");
    }
    let slow = doc.get("slow_ops").and_then(JsonValue::as_arr).expect("slow_ops");
    assert!(!slow.is_empty());
    for s in slow {
        assert_exact_keys(s, &SLOW_OP_KEYS, "slow op");
        for span in s.get("spans").and_then(JsonValue::as_arr).unwrap() {
            assert_exact_keys(span, &SPAN_KEYS, "slow-op span");
        }
    }
}
