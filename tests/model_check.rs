//! Property-based model checking: the database must behave exactly like a
//! `BTreeMap` under arbitrary interleavings of puts, deletes, flushes,
//! compactions, and reopens — in plain mode and in SHIELD mode.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use shield::{open_shield, ShieldOptions};
use shield_env::MemEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Db, Options, ReadOptions, WriteOptions};

#[derive(Clone, Debug)]
enum Action {
    Put(u16, Vec<u8>),
    Delete(u16),
    Flush,
    CompactAll,
    Reopen,
    ScanCheck(u16, u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        8 => (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..60))
            .prop_map(|(k, v)| Action::Put(k % 512, v)),
        3 => any::<u16>().prop_map(|k| Action::Delete(k % 512)),
        1 => Just(Action::Flush),
        1 => Just(Action::CompactAll),
        1 => Just(Action::Reopen),
        2 => (any::<u16>(), 1u8..20).prop_map(|(k, n)| Action::ScanCheck(k % 512, n)),
    ]
}

fn key_of(id: u16) -> Vec<u8> {
    format!("key-{id:05}").into_bytes()
}

trait Opener {
    fn open(&self) -> Box<dyn std::ops::Deref<Target = Db>>;
}

struct PlainOpener {
    env: MemEnv,
}

struct HandleBox(Db);
impl std::ops::Deref for HandleBox {
    type Target = Db;
    fn deref(&self) -> &Db {
        &self.0
    }
}

impl Opener for PlainOpener {
    fn open(&self) -> Box<dyn std::ops::Deref<Target = Db>> {
        let mut opts =
            Options::new(Arc::new(self.env.clone())).with_write_buffer_size(8 << 10);
        opts.compaction.l0_compaction_trigger = 2;
        opts.compaction.target_file_size = 32 << 10;
        Box::new(HandleBox(Db::open(opts, "db").expect("open")))
    }
}

struct ShieldOpener {
    env: MemEnv,
    kds: Arc<LocalKds>,
}

impl Opener for ShieldOpener {
    fn open(&self) -> Box<dyn std::ops::Deref<Target = Db>> {
        let mut opts =
            Options::new(Arc::new(self.env.clone())).with_write_buffer_size(8 << 10);
        opts.compaction.l0_compaction_trigger = 2;
        opts.compaction.target_file_size = 32 << 10;
        Box::new(
            open_shield(
                opts,
                "db",
                ShieldOptions::new(self.kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk"),
            )
            .expect("open shield"),
        )
    }
}

fn run_model(opener: &dyn Opener, actions: &[Action]) {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut db = opener.open();
    let w = WriteOptions::default();
    let r = ReadOptions::new();
    for action in actions {
        match action {
            Action::Put(k, v) => {
                let key = key_of(*k);
                db.put(&w, &key, v).expect("put");
                model.insert(key, v.clone());
            }
            Action::Delete(k) => {
                let key = key_of(*k);
                db.delete(&w, &key).expect("delete");
                model.remove(&key);
            }
            Action::Flush => db.flush().expect("flush"),
            Action::CompactAll => db.compact_all().expect("compact"),
            Action::Reopen => {
                // Clean reopen: drop (flushes WAL), then open again.
                drop(db);
                db = opener.open();
            }
            Action::ScanCheck(k, n) => {
                let start = key_of(*k);
                let got = db.scan(&r, &start, *n as usize).expect("scan");
                let want: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(start.clone()..)
                    .take(*n as usize)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                prop_assert_eq_impl(&got, &want);
            }
        }
    }
    // Final full equivalence check.
    for (key, value) in &model {
        let got = db.get(&r, key).expect("get");
        assert_eq!(got.as_ref(), Some(value), "mismatch for {}", String::from_utf8_lossy(key));
    }
    // Absent keys stay absent.
    for k in [0u16, 100, 511] {
        let key = key_of(k);
        if !model.contains_key(&key) {
            assert_eq!(db.get(&r, &key).expect("get"), None);
        }
    }
    // Full scan equals the model.
    let all = db.scan(&r, b"", usize::MAX >> 1).expect("scan all");
    assert_eq!(all.len(), model.len(), "live key count mismatch");
    for ((gk, gv), (mk, mv)) in all.iter().zip(model.iter()) {
        assert_eq!((gk, gv), (mk, mv));
    }
}

fn prop_assert_eq_impl(got: &[(Vec<u8>, Vec<u8>)], want: &[(Vec<u8>, Vec<u8>)]) {
    assert_eq!(got.len(), want.len(), "scan length mismatch");
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(g, w, "scan row mismatch");
    }
}

// ---------------------------------------------------------------------
// Concurrency stress under parallel subcompactions
// ---------------------------------------------------------------------

/// Scan rows under `prefix`, stopping at the first foreign key.
fn prefix_scan(db: &Db, r: &ReadOptions, prefix: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
    db.scan(r, prefix.as_bytes(), usize::MAX >> 1)
        .expect("scan")
        .into_iter()
        .take_while(|(k, _)| k.starts_with(prefix.as_bytes()))
        .collect()
}

/// Concurrent writers, iterators, and snapshots while parallel
/// subcompactions churn underneath. Each writer owns a disjoint key
/// prefix and its own `BTreeMap` oracle, so it can check — mid-flight,
/// against live compactions —
///
/// * snapshot *stability*: the same snapshot scanned twice is identical;
/// * snapshot *correctness*: the snapshot view equals the oracle at the
///   moment it was taken (no other thread touches this prefix);
/// * iterator correctness: a latest-view scan of the prefix equals the
///   oracle right now.
///
/// At the end, the union of all oracles must equal a full scan.
#[test]
fn concurrent_workload_under_parallel_compactions_matches_oracle() {
    const THREADS: usize = 4;
    const OPS: u32 = 600;
    const KEYSPACE: u32 = 150;

    let env = MemEnv::new();
    let mut opts = Options::new(Arc::new(env.clone()))
        .with_write_buffer_size(8 << 10)
        .with_background_jobs(4)
        .with_max_subcompactions(4);
    opts.block_size = 256; // many index spans => compactions really split
    opts.compaction.l0_compaction_trigger = 2;
    opts.compaction.target_file_size = 4 << 10;
    let db = Db::open(opts, "db").expect("open");

    let oracles: Vec<BTreeMap<Vec<u8>, Vec<u8>>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let db = &db;
            handles.push(s.spawn(move || {
                let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
                let w = WriteOptions::default();
                let prefix = format!("t{tid}-");
                for op in 0..OPS {
                    let i = (op * 31 + tid as u32 * 7) % KEYSPACE;
                    let key = format!("{prefix}k{i:04}").into_bytes();
                    if op % 5 == 4 {
                        db.delete(&w, &key).expect("delete");
                        oracle.remove(&key);
                    } else {
                        let value =
                            format!("{prefix}v{op:05}-{}", "q".repeat(48)).into_bytes();
                        db.put(&w, &key, &value).expect("put");
                        oracle.insert(key, value);
                    }
                    if op % 120 == 60 {
                        let snap = db.snapshot();
                        let at_snap: Vec<(Vec<u8>, Vec<u8>)> =
                            oracle.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                        let ropts = snap.read_options();
                        let scan1 = prefix_scan(db, &ropts, &prefix);
                        let scan2 = prefix_scan(db, &ropts, &prefix);
                        assert_eq!(scan1, scan2, "{prefix}: same snapshot diverged");
                        assert_eq!(scan1, at_snap, "{prefix}: snapshot view != oracle");
                    }
                    if op % 45 == 20 {
                        let now: Vec<(Vec<u8>, Vec<u8>)> =
                            oracle.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                        let scan = prefix_scan(db, &ReadOptions::new(), &prefix);
                        assert_eq!(scan, now, "{prefix}: live view != oracle");
                    }
                }
                oracle
            }));
        }
        // Churn background work while the writers run.
        let db_ref = &db;
        let churner = s.spawn(move || {
            for _ in 0..15 {
                std::thread::sleep(std::time::Duration::from_millis(2));
                let _ = db_ref.flush();
            }
        });
        let oracles: Vec<_> = handles.into_iter().map(|h| h.join().expect("writer")).collect();
        churner.join().expect("churner");
        oracles
    });

    db.compact_all().expect("final compact");
    let mut union: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for oracle in oracles {
        union.extend(oracle);
    }
    let want: Vec<(Vec<u8>, Vec<u8>)> = union.into_iter().collect();
    let all = db.scan(&ReadOptions::new(), b"", usize::MAX >> 1).expect("scan all");
    assert_eq!(all, want, "final state diverges from the union of oracles");
    assert!(
        db.statistics().snapshot().subcompactions > 0,
        "stress ran without ever splitting a compaction"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, max_shrink_iters: 200, ..ProptestConfig::default() })]

    #[test]
    fn plain_db_matches_btreemap(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let opener = PlainOpener { env: MemEnv::new() };
        run_model(&opener, &actions);
    }

    #[test]
    fn shield_db_matches_btreemap(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let opener = ShieldOpener {
            env: MemEnv::new(),
            kds: Arc::new(LocalKds::new(KdsConfig::default())),
        };
        run_model(&opener, &actions);
    }
}
