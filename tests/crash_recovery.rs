//! Crash-recovery matrix (paper §5.3's persistence trade-off):
//!
//! | crash   | plain WAL        | SHIELD unbuffered  | SHIELD buffered      |
//! |---------|------------------|--------------------|----------------------|
//! | process | keeps all acked  | keeps all acked    | may lose buffer tail |
//! | system  | keeps synced     | keeps synced       | keeps synced         |

use std::collections::BTreeMap;
use std::sync::Arc;

use shield::{open_shield, ShieldOptions};
use shield_env::{FaultInjectionEnv, FaultOp, FileKind, MemEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Db, Options, ReadOptions, WriteOptions};

fn shield_db(env: &MemEnv, kds: &Arc<LocalKds>, wal_buffer: usize) -> shield::ShieldDb {
    let mut sopts = ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk");
    sopts.wal_buffer_size = wal_buffer;
    open_shield(Options::new(Arc::new(env.clone())), "db", sopts).expect("open")
}

fn count_recovered(env: &MemEnv, kds: &Arc<LocalKds>, wal_buffer: usize, n: u32) -> u32 {
    let db = shield_db(env, kds, wal_buffer);
    let r = ReadOptions::new();
    (0..n)
        .filter(|i| db.get(&r, format!("k{i:04}").as_bytes()).unwrap().is_some())
        .count() as u32
}

#[test]
fn plain_process_crash_keeps_acked_writes() {
    let env = MemEnv::new();
    {
        let db = Db::open(Options::new(Arc::new(env.clone())), "db").unwrap();
        for i in 0..100u32 {
            db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        db.simulate_process_crash();
    }
    let db = Db::open(Options::new(Arc::new(env)), "db").unwrap();
    let r = ReadOptions::new();
    for i in 0..100u32 {
        assert!(db.get(&r, format!("k{i:04}").as_bytes()).unwrap().is_some(), "lost k{i:04}");
    }
}

#[test]
fn shield_unbuffered_process_crash_keeps_acked_writes() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    {
        let db = shield_db(&env, &kds, 0);
        for i in 0..100u32 {
            db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        db.db.simulate_process_crash();
    }
    assert_eq!(count_recovered(&env, &kds, 0, 100), 100);
}

#[test]
fn shield_buffered_process_crash_loses_only_the_buffer_tail() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let n = 200u32;
    {
        let db = shield_db(&env, &kds, 512);
        for i in 0..n {
            db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), &[b'v'; 100])
                .unwrap();
        }
        db.db.simulate_process_crash();
    }
    let recovered = count_recovered(&env, &kds, 512, n);
    // The §5.3 trade-off: some tail may be lost, bounded by the buffer
    // size (512 B ≈ 4 records of ~130 B each), but data that was drained
    // must survive.
    assert!(recovered < n, "buffered WAL should lose an unflushed tail on process crash");
    assert!(
        n - recovered <= 8,
        "at most a buffer's worth may vanish, lost {}",
        n - recovered
    );
    // And the surviving prefix is contiguous — no holes mid-log.
    let db = shield_db(&env, &kds, 512);
    let r = ReadOptions::new();
    let mut seen_missing = false;
    for i in 0..n {
        let present = db.get(&r, format!("k{i:04}").as_bytes()).unwrap().is_some();
        if !present {
            seen_missing = true;
        } else {
            assert!(!seen_missing, "hole in recovered WAL at k{i:04}");
        }
    }
}

#[test]
fn shield_buffered_sync_write_survives_process_crash() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    {
        let db = shield_db(&env, &kds, 4096);
        db.put(&WriteOptions::default(), b"k0000", b"async").unwrap();
        // An explicit sync drains the encryption buffer.
        db.put(&WriteOptions { sync: true }, b"k0001", b"sync").unwrap();
        db.db.simulate_process_crash();
    }
    let db = shield_db(&env, &kds, 4096);
    let r = ReadOptions::new();
    // The synced write — and everything before it — must survive.
    assert!(db.get(&r, b"k0001").unwrap().is_some());
    assert!(db.get(&r, b"k0000").unwrap().is_some());
}

#[test]
fn system_crash_preserves_synced_prefix_in_all_modes() {
    for wal_buffer in [0usize, 512] {
        let env = MemEnv::new();
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        {
            let db = shield_db(&env, &kds, wal_buffer);
            for i in 0..50u32 {
                db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"v").unwrap();
            }
            // Durability point.
            db.put(&WriteOptions { sync: true }, b"k0050", b"synced").unwrap();
            for i in 51..80u32 {
                db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"v").unwrap();
            }
            db.db.simulate_process_crash();
        }
        env.crash_system();
        let db = shield_db(&env, &kds, wal_buffer);
        let r = ReadOptions::new();
        for i in 0..=50u32 {
            assert!(
                db.get(&r, format!("k{i:04}").as_bytes()).unwrap().is_some(),
                "buffer={wal_buffer}: synced prefix lost k{i:04}"
            );
        }
    }
}

#[test]
fn flushed_sst_data_survives_system_crash() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    {
        let db = shield_db(&env, &kds, 512);
        for i in 0..500u32 {
            db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap(); // SSTs are synced on build
        db.db.simulate_process_crash();
    }
    env.crash_system();
    assert_eq!(count_recovered(&env, &kds, 512, 500), 500);
}

// ---------------------------------------------------------------------
// Crash recovery with parallel subcompactions (max_subcompactions > 1)
// ---------------------------------------------------------------------

fn sub_opts(fenv: &FaultInjectionEnv) -> Options {
    let mut o = Options::new(Arc::new(fenv.clone()))
        .with_background_jobs(4)
        .with_max_subcompactions(4);
    o.block_size = 256; // many index spans => real subrange splits
    o.compaction.l0_compaction_trigger = 2;
    o.compaction.target_file_size = 2 << 10;
    o
}

fn sub_key(i: u32) -> Vec<u8> {
    format!("s{i:04}").into_bytes()
}

fn model_scan(db: &Db) -> Vec<(Vec<u8>, Vec<u8>)> {
    db.scan(&ReadOptions::new(), b"", usize::MAX).expect("scan")
}

/// Crash-consistency loop while parallel subcompactions run: every round
/// writes + deletes + flushes (making the round durable in SSTs), lets
/// the triggered compaction reach a different stage, then process-crashes
/// and system-crashes (dropping all unsynced bytes). Recovery must always
/// equal the model exactly — no lost committed write, no resurrected
/// deleted key, no stale overwritten value from a partially installed
/// compaction.
#[test]
fn crashes_around_parallel_compactions_never_corrupt_state() {
    let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for round in 0..5u32 {
        let db = Db::open(sub_opts(&fenv), "db").expect("open");
        for j in 0..250u32 {
            let i = (round * 53 + j) % 400;
            let value = format!("A{round:02}-{i:04}-{}", "x".repeat(64)).into_bytes();
            db.put(&WriteOptions::default(), &sub_key(i), &value).expect("put");
            model.insert(sub_key(i), value);
        }
        for j in 250..280u32 {
            let i = (round * 53 + j) % 400;
            db.delete(&WriteOptions::default(), &sub_key(i)).expect("delete");
            model.remove(&sub_key(i));
        }
        // Durability point: the round's data is now in synced SSTs, and
        // the flush has (most rounds) tripped an L0 compaction that is
        // now running split into subranges.
        db.flush().expect("flush");
        // Vary how far the background compaction gets before the crash.
        std::thread::sleep(std::time::Duration::from_micros(500 * u64::from(round)));
        db.simulate_process_crash();
        fenv.crash().expect("system crash");

        let db = Db::open(sub_opts(&fenv), "db").expect("reopen");
        let live: Vec<(Vec<u8>, Vec<u8>)> = model.clone().into_iter().collect();
        assert_eq!(model_scan(&db), live, "round {round}: recovered state diverges from model");
        db.simulate_process_crash();
    }

    // Final recovery still drives parallel compactions over the survivor
    // state and converges to the same view. Two more flushed batches
    // guarantee the L0 trigger fires so the parallel path runs here.
    let db = Db::open(sub_opts(&fenv), "db").expect("final open");
    for batch in 0..2u32 {
        for j in 0..120u32 {
            let i = (batch * 200 + j) % 400;
            let value = format!("F{batch:02}-{i:04}-{}", "w".repeat(64)).into_bytes();
            db.put(&WriteOptions::default(), &sub_key(i), &value).expect("put");
            model.insert(sub_key(i), value);
        }
        db.flush().expect("final flush");
    }
    db.compact_all().expect("final compact");
    let live: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
    assert_eq!(model_scan(&db), live, "post-compaction state diverges from model");
    assert!(
        db.statistics().snapshot().subcompactions > 0,
        "workload never exercised the parallel compaction path"
    );
}

/// A storage fault mid-compaction parks a background error while output
/// files may already be partially written; a process + system crash on
/// top of that must recover every flushed write and expose none of the
/// uninstalled compaction outputs — and the post-recovery compaction
/// re-runs the same work in parallel subranges.
#[test]
fn fault_mid_compaction_then_crash_exposes_no_partial_outputs() {
    let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let db = Db::open(sub_opts(&fenv), "db").expect("open");

    // Round A: clean data, flushed to the first L0 file (below trigger).
    for i in 0..300u32 {
        let value = format!("base-{i:04}-{}", "y".repeat(48)).into_bytes();
        db.put(&WriteOptions::default(), &sub_key(i), &value).expect("put");
        model.insert(sub_key(i), value);
    }
    db.flush().expect("flush A");

    // SST *reads* fail from here on: flushes still succeed (write-only),
    // but the compaction the next flush triggers dies mid-merge, after
    // the engine may have opened and partially written output files.
    fenv.error_n_times(FileKind::Sst, FaultOp::Read, 10_000);

    // Round B: overwrites + deletes, flushed to the second L0 file,
    // which trips the compaction into the armed faults.
    for i in 0..150u32 {
        let value = format!("over-{i:04}-{}", "z".repeat(48)).into_bytes();
        db.put(&WriteOptions::default(), &sub_key(i), &value).expect("put");
        model.insert(sub_key(i), value);
    }
    for i in 280..300u32 {
        db.delete(&WriteOptions::default(), &sub_key(i)).expect("delete");
        model.remove(&sub_key(i));
    }
    db.flush().expect("flush B");
    let err = db.compact_all().expect_err("compaction must park on injected read faults");
    let _ = err; // any engine error kind is acceptable; state checks follow

    db.simulate_process_crash();
    fenv.crash().expect("system crash");
    fenv.disarm_all();

    // Recovery: both flushed rounds are fully durable, the half-done
    // compaction contributes nothing.
    let db = Db::open(sub_opts(&fenv), "db").expect("reopen");
    let live: Vec<(Vec<u8>, Vec<u8>)> = model.clone().into_iter().collect();
    assert_eq!(model_scan(&db), live, "recovered state diverges from model");

    // The retried compaction now runs clean — split into subranges —
    // and lands on the same view.
    db.compact_all().expect("compact after recovery");
    assert_eq!(model_scan(&db), live, "post-recovery compaction changed the view");
    assert!(
        db.statistics().snapshot().subcompactions > 0,
        "recovered compaction should run as parallel subranges"
    );
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let mut expected_floor = 0u32;
    for round in 0..5u32 {
        let db = shield_db(&env, &kds, 512);
        let base = round * 100;
        for i in 0..100u32 {
            db.put(
                &WriteOptions::default(),
                format!("r{:02}-{:03}", round, i).as_bytes(),
                b"v",
            )
            .unwrap();
        }
        // Sync the round's data so the next crash cannot take it.
        db.put(&WriteOptions { sync: true }, format!("round-{round}").as_bytes(), b"done")
            .unwrap();
        expected_floor = base + 100;
        db.db.simulate_process_crash();
    }
    let db = shield_db(&env, &kds, 512);
    let r = ReadOptions::new();
    let mut found = 0u32;
    for round in 0..5u32 {
        assert!(
            db.get(&r, format!("round-{round}").as_bytes()).unwrap().is_some(),
            "round marker {round} lost"
        );
        for i in 0..100u32 {
            if db.get(&r, format!("r{:02}-{:03}", round, i).as_bytes()).unwrap().is_some() {
                found += 1;
            }
        }
    }
    assert_eq!(found, expected_floor, "synced data must all survive");
}
