//! Crash-recovery matrix (paper §5.3's persistence trade-off):
//!
//! | crash   | plain WAL        | SHIELD unbuffered  | SHIELD buffered      |
//! |---------|------------------|--------------------|----------------------|
//! | process | keeps all acked  | keeps all acked    | may lose buffer tail |
//! | system  | keeps synced     | keeps synced       | keeps synced         |

use std::sync::Arc;

use shield::{open_shield, ShieldOptions};
use shield_env::MemEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Db, Options, ReadOptions, WriteOptions};

fn shield_db(env: &MemEnv, kds: &Arc<LocalKds>, wal_buffer: usize) -> shield::ShieldDb {
    let mut sopts = ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk");
    sopts.wal_buffer_size = wal_buffer;
    open_shield(Options::new(Arc::new(env.clone())), "db", sopts).expect("open")
}

fn count_recovered(env: &MemEnv, kds: &Arc<LocalKds>, wal_buffer: usize, n: u32) -> u32 {
    let db = shield_db(env, kds, wal_buffer);
    let r = ReadOptions::new();
    (0..n)
        .filter(|i| db.get(&r, format!("k{i:04}").as_bytes()).unwrap().is_some())
        .count() as u32
}

#[test]
fn plain_process_crash_keeps_acked_writes() {
    let env = MemEnv::new();
    {
        let db = Db::open(Options::new(Arc::new(env.clone())), "db").unwrap();
        for i in 0..100u32 {
            db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        db.simulate_process_crash();
    }
    let db = Db::open(Options::new(Arc::new(env)), "db").unwrap();
    let r = ReadOptions::new();
    for i in 0..100u32 {
        assert!(db.get(&r, format!("k{i:04}").as_bytes()).unwrap().is_some(), "lost k{i:04}");
    }
}

#[test]
fn shield_unbuffered_process_crash_keeps_acked_writes() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    {
        let db = shield_db(&env, &kds, 0);
        for i in 0..100u32 {
            db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        db.db.simulate_process_crash();
    }
    assert_eq!(count_recovered(&env, &kds, 0, 100), 100);
}

#[test]
fn shield_buffered_process_crash_loses_only_the_buffer_tail() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let n = 200u32;
    {
        let db = shield_db(&env, &kds, 512);
        for i in 0..n {
            db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), &[b'v'; 100])
                .unwrap();
        }
        db.db.simulate_process_crash();
    }
    let recovered = count_recovered(&env, &kds, 512, n);
    // The §5.3 trade-off: some tail may be lost, bounded by the buffer
    // size (512 B ≈ 4 records of ~130 B each), but data that was drained
    // must survive.
    assert!(recovered < n, "buffered WAL should lose an unflushed tail on process crash");
    assert!(
        n - recovered <= 8,
        "at most a buffer's worth may vanish, lost {}",
        n - recovered
    );
    // And the surviving prefix is contiguous — no holes mid-log.
    let db = shield_db(&env, &kds, 512);
    let r = ReadOptions::new();
    let mut seen_missing = false;
    for i in 0..n {
        let present = db.get(&r, format!("k{i:04}").as_bytes()).unwrap().is_some();
        if !present {
            seen_missing = true;
        } else {
            assert!(!seen_missing, "hole in recovered WAL at k{i:04}");
        }
    }
}

#[test]
fn shield_buffered_sync_write_survives_process_crash() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    {
        let db = shield_db(&env, &kds, 4096);
        db.put(&WriteOptions::default(), b"k0000", b"async").unwrap();
        // An explicit sync drains the encryption buffer.
        db.put(&WriteOptions { sync: true }, b"k0001", b"sync").unwrap();
        db.db.simulate_process_crash();
    }
    let db = shield_db(&env, &kds, 4096);
    let r = ReadOptions::new();
    // The synced write — and everything before it — must survive.
    assert!(db.get(&r, b"k0001").unwrap().is_some());
    assert!(db.get(&r, b"k0000").unwrap().is_some());
}

#[test]
fn system_crash_preserves_synced_prefix_in_all_modes() {
    for wal_buffer in [0usize, 512] {
        let env = MemEnv::new();
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        {
            let db = shield_db(&env, &kds, wal_buffer);
            for i in 0..50u32 {
                db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"v").unwrap();
            }
            // Durability point.
            db.put(&WriteOptions { sync: true }, b"k0050", b"synced").unwrap();
            for i in 51..80u32 {
                db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"v").unwrap();
            }
            db.db.simulate_process_crash();
        }
        env.crash_system();
        let db = shield_db(&env, &kds, wal_buffer);
        let r = ReadOptions::new();
        for i in 0..=50u32 {
            assert!(
                db.get(&r, format!("k{i:04}").as_bytes()).unwrap().is_some(),
                "buffer={wal_buffer}: synced prefix lost k{i:04}"
            );
        }
    }
}

#[test]
fn flushed_sst_data_survives_system_crash() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    {
        let db = shield_db(&env, &kds, 512);
        for i in 0..500u32 {
            db.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap(); // SSTs are synced on build
        db.db.simulate_process_crash();
    }
    env.crash_system();
    assert_eq!(count_recovered(&env, &kds, 512, 500), 500);
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let mut expected_floor = 0u32;
    for round in 0..5u32 {
        let db = shield_db(&env, &kds, 512);
        let base = round * 100;
        for i in 0..100u32 {
            db.put(
                &WriteOptions::default(),
                format!("r{:02}-{:03}", round, i).as_bytes(),
                b"v",
            )
            .unwrap();
        }
        // Sync the round's data so the next crash cannot take it.
        db.put(&WriteOptions { sync: true }, format!("round-{round}").as_bytes(), b"done")
            .unwrap();
        expected_floor = base + 100;
        db.db.simulate_process_crash();
    }
    let db = shield_db(&env, &kds, 512);
    let r = ReadOptions::new();
    let mut found = 0u32;
    for round in 0..5u32 {
        assert!(
            db.get(&r, format!("round-{round}").as_bytes()).unwrap().is_some(),
            "round marker {round} lost"
        );
        for i in 0..100u32 {
            if db.get(&r, format!("r{:02}-{:03}", round, i).as_bytes()).unwrap().is_some() {
                found += 1;
            }
        }
    }
    assert_eq!(found, expected_floor, "synced data must all survive");
}
