//! Differential correctness of parallel subcompactions.
//!
//! Two layers of evidence, both across the three encryption modes
//! (none / EncFS / SHIELD):
//!
//! 1. **Compaction-layer differential**: run the same merge task once
//!    serially (`run_compaction`) and once as planned subranges
//!    (`plan_subcompactions` + `run_compaction_range` + stitched edit),
//!    then compare the concatenated output entry streams **byte for
//!    byte** — internal keys (user key, sequence, type) and values must
//!    be identical, for random key/value/delete workloads under random
//!    snapshot horizons.
//! 2. **DB-level differential**: two engines running the identical
//!    workload, one with `max_subcompactions=1` and one with `=4`, must
//!    agree on every scan — at the latest sequence and through
//!    snapshots taken mid-workload.
//!
//! Plus the boundary regression for the user-key invariant: many
//! versions of one hot key straddling candidate boundaries must never
//! be split across subranges.

use std::ops::Deref;
use std::sync::Arc;

use proptest::prelude::*;
use shield::{open_encfs, open_plain, open_shield, EncryptedEnv, ShieldOptions};
use shield_crypto::{Algorithm, Dek};
use shield_env::{Env, FileKind, MemEnv};
use shield_kds::{DekResolver, Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::compaction::{
    append_input_deletions, plan_subcompactions, run_compaction, run_compaction_range,
    CompactionContext, CompactionOutcome, CompactionTask,
};
use shield_lsm::iter::InternalIterator;
use shield_lsm::sst::builder::{TableBuilder, TableBuilderOptions};
use shield_lsm::types::{internal_key_cmp, make_internal_key, ValueType, MAX_SEQUENCE};
use shield_lsm::version::edit::{FileMeta, VersionEdit};
use shield_lsm::version::filenames::sst_file_name;
use shield_lsm::version::table_cache::TableCache;
use shield_lsm::version::version::Version;
use shield_lsm::{Db, EncryptionConfig, Options, ReadOptions, WriteOptions};

// ---------------------------------------------------------------------
// Compaction-layer differential
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Debug)]
enum Mode {
    None,
    EncFs,
    Shield,
}

const MODES: [Mode; 3] = [Mode::None, Mode::EncFs, Mode::Shield];

/// One logical input entry: (key id, sequence, is_delete, value seed).
type Entry = (u16, u64, bool, u8);

fn user_key(id: u16) -> Vec<u8> {
    format!("key-{id:05}").into_bytes()
}

fn value_for(seed: u8, seq: u64) -> Vec<u8> {
    let len = 1 + (seed as usize % 96);
    (0..len).map(|i| seed.wrapping_add(i as u8).wrapping_add(seq as u8)).collect()
}

/// Storage + engine-side crypto for one mode. The env already encrypts
/// in EncFS mode; the engine config encrypts in SHIELD mode.
struct ModeCtx {
    env: Arc<dyn Env>,
    encryption: Option<EncryptionConfig>,
    table_cache: Arc<TableCache>,
}

impl ModeCtx {
    fn new(mode: Mode) -> ModeCtx {
        let base: Arc<dyn Env> = Arc::new(MemEnv::new());
        let (env, encryption): (Arc<dyn Env>, Option<EncryptionConfig>) = match mode {
            Mode::None => (base, None),
            Mode::EncFs => {
                let dek = Dek::generate(Algorithm::Aes128Ctr);
                (Arc::new(EncryptedEnv::new(base, dek, 512)), None)
            }
            Mode::Shield => {
                let kds = Arc::new(LocalKds::new(KdsConfig::default()));
                let resolver = Arc::new(DekResolver::new(
                    kds as Arc<dyn Kds>,
                    None,
                    ServerId(1),
                    Algorithm::Aes128Ctr,
                ));
                (base, Some(EncryptionConfig::new(resolver)))
            }
        };
        env.create_dir_all("db").expect("mkdir");
        let table_cache =
            TableCache::new(env.clone(), "db".into(), encryption.clone(), None, 32);
        ModeCtx { env, encryption, table_cache }
    }

    /// Builds one input SST from pre-sorted internal entries. Tiny
    /// blocks so even small inputs yield several index spans (boundary
    /// candidates).
    fn build_table(&self, number: u64, entries: &[(Vec<u8>, Vec<u8>)]) -> Arc<FileMeta> {
        let path = shield_env::join_path("db", &sst_file_name(number));
        let opts = TableBuilderOptions { block_size: 128, ..TableBuilderOptions::default() };
        let (file, opts) = match &self.encryption {
            Some(cfg) => {
                let (f, id) =
                    cfg.new_writable(self.env.as_ref(), &path, FileKind::Sst).expect("writable");
                (f, TableBuilderOptions { dek_id: Some(id), ..opts })
            }
            None => (self.env.new_writable_file(&path, FileKind::Sst).expect("writable"), opts),
        };
        let mut b = TableBuilder::new(file, opts);
        for (ikey, value) in entries {
            b.add(ikey, value).expect("add");
        }
        let (props, size) = b.finish().expect("finish");
        Arc::new(FileMeta {
            number,
            file_size: size,
            smallest: entries.first().expect("non-empty").0.clone(),
            largest: entries.last().expect("non-empty").0.clone(),
            dek_id: props.dek_id,
        })
    }
}

/// Distributes `entries` round-robin over `files` input tables, each
/// internally sorted (user key asc, seq desc) — an L0-style overlapping
/// run set — and returns the merge task plus its version.
fn build_inputs(ctx: &ModeCtx, entries: &[Entry], files: usize) -> (Version, CompactionTask) {
    let mut per_file: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); files];
    for (i, (id, seq, is_delete, seed)) in entries.iter().enumerate() {
        let (vtype, value) = if *is_delete {
            (ValueType::Deletion, Vec::new())
        } else {
            (ValueType::Value, value_for(*seed, *seq))
        };
        per_file[i % files].push((make_internal_key(&user_key(*id), *seq, vtype), value));
    }
    let mut metas = Vec::new();
    for (i, mut file_entries) in per_file.into_iter().enumerate() {
        if file_entries.is_empty() {
            continue;
        }
        file_entries.sort_by(|a, b| internal_key_cmp(&a.0, &b.0));
        metas.push(ctx.build_table(100 + i as u64, &file_entries));
    }
    let mut version = Version::new();
    version.files[0] = metas.clone();
    let task = CompactionTask::Merge {
        input_level: 0,
        output_level: 1,
        inputs: metas,
        overlaps: Vec::new(),
    };
    (version, task)
}

/// Concatenated (internal key, value) stream of an edit's outputs, in
/// file order.
fn dump_outputs(tc: &Arc<TableCache>, edit: &VersionEdit) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut out = Vec::new();
    for (_, meta) in &edit.new_files {
        let table = tc.get(meta.number).expect("open output");
        let mut it = table.iter();
        it.seek_to_first();
        while it.valid() {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        it.status().expect("iterate output");
    }
    out
}

/// Runs the serial and the subrange-stitched compaction of the same
/// task and asserts byte-for-byte identical output streams.
fn assert_equivalent(
    ctx: &ModeCtx,
    version: &Version,
    task: &CompactionTask,
    smallest_snapshot: u64,
    max_subcompactions: usize,
) -> (usize, usize) {
    let topts = TableBuilderOptions { block_size: 128, ..TableBuilderOptions::default() };
    let target_file_size = 2 << 10; // force several outputs per run

    // Serial reference.
    let mut next = 1_000u64;
    let mut alloc = || {
        next += 1;
        next
    };
    let mut serial_ctx = CompactionContext {
        env: &ctx.env,
        db_path: "db",
        encryption: ctx.encryption.as_ref(),
        table_cache: &ctx.table_cache,
        version,
        smallest_snapshot,
        table_options: topts.clone(),
        target_file_size,
        readahead_blocks: 0,
        next_file_number: &mut alloc,
    };
    let serial = run_compaction(&mut serial_ctx, task).expect("serial compaction");

    // Planned subranges, stitched exactly like `Db::run_subcompactions`.
    let plan = plan_subcompactions(&ctx.table_cache, task, max_subcompactions);
    assert!(!plan.is_empty());
    for w in plan.windows(2) {
        assert_eq!(w[0].upper, w[1].lower, "ranges must tile the keyspace");
    }
    let mut next = 2_000u64;
    let mut alloc = || {
        next += 1;
        next
    };
    let mut stitched = CompactionOutcome::default();
    for range in &plan {
        let mut range_ctx = CompactionContext {
            env: &ctx.env,
            db_path: "db",
            encryption: ctx.encryption.as_ref(),
            table_cache: &ctx.table_cache,
            version,
            smallest_snapshot,
            table_options: topts.clone(),
            target_file_size,
            readahead_blocks: 0,
            next_file_number: &mut alloc,
        };
        let out = run_compaction_range(&mut range_ctx, task, range).expect("subrange");
        stitched.bytes_written += out.bytes_written;
        stitched.entries_dropped += out.entries_dropped;
        stitched.outputs += out.outputs;
        stitched.edit.new_files.extend(out.edit.new_files);
    }
    append_input_deletions(task, &mut stitched.edit);

    let serial_stream = dump_outputs(&ctx.table_cache, &serial.edit);
    let stitched_stream = dump_outputs(&ctx.table_cache, &stitched.edit);
    assert_eq!(
        serial_stream, stitched_stream,
        "subcompaction output must be key/seq/value-identical to the serial run"
    );
    assert_eq!(serial.entries_dropped, stitched.entries_dropped, "drop accounting must agree");
    assert_eq!(serial.edit.deleted_files, stitched.edit.deleted_files, "same inputs deleted");
    (plan.len(), serial_stream.len())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, max_shrink_iters: 100, ..ProptestConfig::default() })]

    /// Random overlapping inputs with overwrites, deletes, and a random
    /// snapshot horizon: planned subranges must reproduce the serial
    /// output stream exactly, in every encryption mode.
    #[test]
    fn random_workloads_merge_identically(
        ids in proptest::collection::vec(0u16..64, 40..220),
        deletes in proptest::collection::vec(any::<bool>(), 40..220),
        seeds in proptest::collection::vec(any::<u8>(), 40..220),
        files in 2usize..5,
        snapshot_sel in 0u64..4,
        max_subs in 2usize..6,
    ) {
        let n = ids.len().min(deletes.len()).min(seeds.len());
        let entries: Vec<Entry> = (0..n)
            .map(|i| (ids[i], (i as u64) + 1, deletes[i], seeds[i]))
            .collect();
        // 0 => everything visible (MAX), else a horizon inside the run.
        let smallest_snapshot = match snapshot_sel {
            0 => MAX_SEQUENCE,
            s => (n as u64 * s) / 4,
        };
        for mode in MODES {
            let ctx = ModeCtx::new(mode);
            let (version, task) = build_inputs(&ctx, &entries, files);
            assert_equivalent(&ctx, &version, &task, smallest_snapshot, max_subs);
        }
    }
}

/// Deterministic many-range check that planning actually splits (the
/// proptest above would be vacuous if every plan degenerated to one
/// range) and that splitting covers every mode.
#[test]
fn wide_workload_splits_and_merges_identically() {
    let entries: Vec<Entry> =
        (0..600u64).map(|i| ((i % 300) as u16, i + 1, i % 7 == 0, (i % 251) as u8)).collect();
    for mode in MODES {
        let ctx = ModeCtx::new(mode);
        let (version, task) = build_inputs(&ctx, &entries, 3);
        let (ranges, stream_len) = assert_equivalent(&ctx, &version, &task, MAX_SEQUENCE, 4);
        assert!(ranges > 1, "{mode:?}: expected a real split, got {ranges} range(s)");
        assert!(stream_len > 0, "{mode:?}: outputs must not be empty");
    }
}

// ---------------------------------------------------------------------
// Boundary regression: a user key's versions must never be split
// ---------------------------------------------------------------------

/// Many versions of one hot key straddle every candidate boundary; the
/// planner must collapse those candidates (boundaries are strictly
/// increasing user keys), and the merge must still drop shadowed
/// versions exactly like the serial run. With internal-key boundaries
/// (the bug this guards against), the hot key's versions would land in
/// different subranges, each restarting the per-key shadowing state and
/// resurrecting history the serial run drops.
#[test]
fn hot_key_versions_never_straddle_a_boundary() {
    let mut entries: Vec<Entry> = Vec::new();
    let mut seq = 0u64;
    // A few cold keys below, a hot key with 300 versions, a few above.
    for id in 0..8u16 {
        seq += 1;
        entries.push((id, seq, false, id as u8));
    }
    for v in 0..300u64 {
        seq += 1;
        entries.push((100, seq, false, (v % 251) as u8));
    }
    for id in 200..208u16 {
        seq += 1;
        entries.push((id, seq, false, id as u8));
    }
    let ctx = ModeCtx::new(Mode::None);
    let (version, task) = build_inputs(&ctx, &entries, 2);

    let plan = plan_subcompactions(&ctx.table_cache, &task, 4);
    let input_keys: Vec<Vec<u8>> =
        (0u16..8).chain(100..101).chain(200..208).map(user_key).collect();
    let mut prev: Option<&[u8]> = None;
    for range in &plan {
        if let Some(upper) = &range.upper {
            assert!(
                input_keys.iter().any(|k| k == upper),
                "boundary {:?} is not a user key of the input",
                String::from_utf8_lossy(upper)
            );
            if let Some(p) = prev {
                assert!(p < upper.as_slice(), "boundaries must strictly increase");
            }
            prev = Some(upper);
        }
    }
    // Every version of the hot key falls in exactly one subrange.
    let hot = user_key(100);
    let holders = plan
        .iter()
        .filter(|r| {
            r.lower.as_deref().is_none_or(|l| l <= hot.as_slice())
                && r.upper.as_deref().is_none_or(|u| hot.as_slice() < u)
        })
        .count();
    assert_eq!(holders, 1, "hot key must belong to exactly one subrange");

    // And the differential closes the loop: all-history-visible and
    // history-droppable horizons both reproduce the serial stream.
    assert_equivalent(&ctx, &version, &task, MAX_SEQUENCE, 4);
    assert_equivalent(&ctx, &version, &task, seq, 4);
}

// ---------------------------------------------------------------------
// DB-level differential: max_subcompactions = 1 vs 4
// ---------------------------------------------------------------------

struct EnginePair {
    serial: EngineUnderTest,
    parallel: EngineUnderTest,
}

struct EngineUnderTest {
    env: MemEnv,
    kds: Arc<LocalKds>,
    dek: Dek,
    mode: Mode,
    max_subcompactions: usize,
}

impl EngineUnderTest {
    fn new(mode: Mode, max_subcompactions: usize) -> Self {
        EngineUnderTest {
            env: MemEnv::new(),
            kds: Arc::new(LocalKds::new(KdsConfig::default())),
            dek: Dek::generate(Algorithm::Aes128Ctr),
            mode,
            max_subcompactions,
        }
    }

    fn opts(&self) -> Options {
        let mut o = Options::new(Arc::new(self.env.clone()))
            .with_write_buffer_size(8 << 10)
            .with_background_jobs(4)
            .with_max_subcompactions(self.max_subcompactions);
        o.compaction.l0_compaction_trigger = 2;
        o.compaction.target_file_size = 8 << 10;
        o
    }

    fn open(&self) -> Box<dyn Deref<Target = Db>> {
        struct DbBox(Db);
        impl Deref for DbBox {
            type Target = Db;
            fn deref(&self) -> &Db {
                &self.0
            }
        }
        match self.mode {
            Mode::None => Box::new(DbBox(open_plain(self.opts(), "db").expect("open plain"))),
            Mode::EncFs => {
                Box::new(open_encfs(self.opts(), "db", self.dek.clone(), 512).expect("open encfs"))
            }
            Mode::Shield => Box::new(
                open_shield(
                    self.opts(),
                    "db",
                    ShieldOptions::new(self.kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk"),
                )
                .expect("open shield"),
            ),
        }
    }
}

/// A step of the DB-level workload.
#[derive(Clone, Debug)]
enum Step {
    Put(u16, u8),
    Delete(u16),
    Flush,
    Snapshot,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (0u16..256, any::<u8>()).prop_map(|(k, s)| Step::Put(k, s)),
        2 => (0u16..256).prop_map(Step::Delete),
        1 => Just(Step::Flush),
        1 => Just(Step::Snapshot),
    ]
}

fn run_pair(mode: Mode, steps: &[Step]) {
    let pair = EnginePair {
        serial: EngineUnderTest::new(mode, 1),
        parallel: EngineUnderTest::new(mode, 4),
    };
    let db1 = pair.serial.open();
    let db4 = pair.parallel.open();
    let w = WriteOptions::default();
    let mut snaps = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Put(id, seed) => {
                let v = value_for(*seed, i as u64);
                db1.put(&w, &user_key(*id), &v).expect("put serial");
                db4.put(&w, &user_key(*id), &v).expect("put parallel");
            }
            Step::Delete(id) => {
                db1.delete(&w, &user_key(*id)).expect("del serial");
                db4.delete(&w, &user_key(*id)).expect("del parallel");
            }
            Step::Flush => {
                db1.flush().expect("flush serial");
                db4.flush().expect("flush parallel");
            }
            Step::Snapshot => {
                snaps.push((db1.snapshot(), db4.snapshot()));
            }
        }
    }
    db1.flush().expect("final flush serial");
    db4.flush().expect("final flush parallel");
    db1.compact_all().expect("compact serial");
    db4.compact_all().expect("compact parallel");

    let r = ReadOptions::new();
    let scan1 = db1.scan(&r, b"", usize::MAX).expect("scan serial");
    let scan4 = db4.scan(&r, b"", usize::MAX).expect("scan parallel");
    assert_eq!(scan1, scan4, "{mode:?}: latest scans diverge");
    for (s1, s4) in &snaps {
        assert_eq!(s1.sequence(), s4.sequence(), "{mode:?}: snapshot seqs diverge");
        let v1 = db1.scan(&s1.read_options(), b"", usize::MAX).expect("snap scan serial");
        let v4 = db4.scan(&s4.read_options(), b"", usize::MAX).expect("snap scan parallel");
        assert_eq!(v1, v4, "{mode:?}: snapshot views diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, max_shrink_iters: 60, ..ProptestConfig::default() })]

    /// Serial and 4-way engines see identical data through snapshots
    /// and compactions for random workloads, in every mode.
    #[test]
    fn db_level_serial_vs_parallel(steps in proptest::collection::vec(step_strategy(), 30..160)) {
        for mode in MODES {
            run_pair(mode, &steps);
        }
    }
}

/// The parallel engine really runs subcompactions (the DB-level
/// differential would be vacuous otherwise) and stays correct under a
/// heavy multi-level workload.
#[test]
fn parallel_engine_actually_subcompacts() {
    let under_test = EngineUnderTest::new(Mode::None, 4);
    let db = under_test.open();
    let w = WriteOptions::default();
    for i in 0..6_000u32 {
        let id = (i % 900) as u16;
        db.put(&w, &user_key(id), &value_for((i % 251) as u8, i as u64)).expect("put");
    }
    db.compact_all().expect("compact");
    let stats = db.statistics().snapshot();
    assert!(
        stats.subcompactions > 0,
        "expected parallel subcompactions to run, stats: compactions={} subcompactions={}",
        stats.compactions,
        stats.subcompactions
    );
    // Subrange wall-clock sums across workers.
    assert!(stats.subcompaction_micros > 0);
    // Data still fully readable.
    let r = ReadOptions::new();
    for id in 0..900u16 {
        assert!(db.get(&r, &user_key(id)).expect("get").is_some(), "missing key {id}");
    }
}
