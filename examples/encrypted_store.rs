//! Confidentiality demonstration: write the same secrets through the
//! unencrypted baseline, instance-level EncFS, and SHIELD, then grep the
//! raw database files for plaintext — reproducing the paper's threat
//! scenarios 1–2 (§5.5): stolen media / unauthorized filesystem access.
//!
//! ```sh
//! cargo run --release --example encrypted_store
//! ```

use std::sync::Arc;

use shield::{open_encfs, open_plain, open_shield, ShieldOptions, WriteOptions};
use shield_crypto::{Algorithm, Dek};
use shield_env::PosixEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Db, Options};

const SECRET: &[u8] = b"TOP-SECRET-CUSTOMER-RECORD";

fn populate(db: &Db) {
    let w = WriteOptions::default();
    for i in 0..5_000u32 {
        let mut value = SECRET.to_vec();
        value.extend_from_slice(format!("-{i}").as_bytes());
        db.put(&w, format!("account:{i:06}").as_bytes(), &value).expect("put");
    }
    db.compact_all().expect("settle");
}

/// Scans every file in `dir` for the secret; returns files that leak it.
fn leaky_files(dir: &str) -> Vec<String> {
    let mut leaks = Vec::new();
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let entry = entry.expect("entry");
        if !entry.file_type().expect("type").is_file() {
            continue;
        }
        let data = std::fs::read(entry.path()).expect("read file");
        if data.windows(SECRET.len()).any(|w| w == SECRET) {
            leaks.push(entry.file_name().to_string_lossy().to_string());
        }
    }
    leaks
}

fn scratch(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("shield-encdemo-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_str().unwrap().to_string()
}

fn main() {
    // Unencrypted baseline: the attacker reads everything.
    let plain_dir = scratch("plain");
    {
        let db = open_plain(Options::new(Arc::new(PosixEnv::new())), &plain_dir).expect("open");
        populate(&db);
    }
    let plain_leaks = leaky_files(&plain_dir);
    println!("unencrypted RocksDB-style store: {} leaking file(s): {:?}", plain_leaks.len(), plain_leaks);
    assert!(!plain_leaks.is_empty(), "plaintext store must leak (that's the point)");

    // Instance-level EncFS (§4): one DEK, everything ciphertext.
    let encfs_dir = scratch("encfs");
    {
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let db = open_encfs(Options::new(Arc::new(PosixEnv::new())), &encfs_dir, dek, 512)
            .expect("open");
        populate(&db);
    }
    let encfs_leaks = leaky_files(&encfs_dir);
    println!("EncFS store:                     {} leaking file(s)", encfs_leaks.len());
    assert!(encfs_leaks.is_empty(), "EncFS must not leak plaintext");

    // SHIELD (§5): per-file DEKs + KDS + secure cache.
    let shield_dir = scratch("shield");
    {
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let db = open_shield(
            Options::new(Arc::new(PosixEnv::new())),
            &shield_dir,
            ShieldOptions::new(kds as Arc<dyn Kds>, ServerId(1), b"passkey"),
        )
        .expect("open");
        populate(&db);
    }
    let shield_leaks = leaky_files(&shield_dir);
    println!("SHIELD store:                    {} leaking file(s)", shield_leaks.len());
    assert!(shield_leaks.is_empty(), "SHIELD must not leak plaintext");

    println!("\nOn-disk confidentiality holds for both designs (paper §5.5, scenarios 1–2).");
}
