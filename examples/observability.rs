//! Observability tour: the engine event LOG, custom listeners, the
//! per-operation PerfContext, and the `shield_metrics_v1` report — all
//! through the public API.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use shield::{open_shield, Event, EventListener, ReadOptions, ShieldOptions, WriteOptions};
use shield_core::{LogConfig, LogLevel};
use shield_env::PosixEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::Options;

/// A user-supplied listener: counts flushes and compactions as they end.
#[derive(Default)]
struct Counts {
    flushes: AtomicU64,
    compactions: AtomicU64,
}

impl EventListener for Counts {
    fn on_event(&self, event: &Event) {
        match event {
            Event::FlushEnd { .. } => self.flushes.fetch_add(1, Ordering::Relaxed),
            Event::CompactionEnd { .. } => self.compactions.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    }
}

fn main() {
    let dir = std::env::temp_dir().join("shield-observability");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.to_str().unwrap();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let shield_opts =
        ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"observability tour");

    // 1. Open with an INFO-level LOG file (the SHIELD_LOG env var does the
    //    same without code) and a custom listener on the same stream.
    let counts = Arc::new(Counts::default());
    let mut opts = Options::new(Arc::new(PosixEnv::new()));
    opts.write_buffer_size = 64 << 10; // small memtable → several flushes
    opts.compaction.l0_compaction_trigger = 2;
    opts.info_log = Some(LogConfig { level: Some(LogLevel::Info), json: false });
    opts = opts.with_event_listener(counts.clone());
    let db = open_shield(opts, path, shield_opts.clone()).expect("open");

    let w = WriteOptions::default();
    for i in 0..20_000u32 {
        db.put(&w, format!("user:{i:05}").as_bytes(), format!("profile-{i}").as_bytes())
            .expect("put");
    }
    db.compact_all().expect("compact");
    let r = ReadOptions::new();
    for i in (0..20_000u32).step_by(61) {
        assert!(db.get(&r, format!("user:{i:05}").as_bytes()).expect("get").is_some());
    }
    println!(
        "listener saw {} flushes, {} compactions",
        counts.flushes.load(Ordering::Relaxed),
        counts.compactions.load(Ordering::Relaxed)
    );
    assert!(counts.flushes.load(Ordering::Relaxed) > 0);
    assert!(counts.compactions.load(Ordering::Relaxed) > 0);

    // 2. The metrics report: human table + stable JSON document.
    let report = db.metrics_report();
    print!("{}", report.render());
    let json = report.to_json();
    assert!(json.contains("\"schema\":\"shield_metrics_v1\""));
    println!("JSON report: {} bytes, schema shield_metrics_v1", json.len());
    drop(db); // emits db_close, completing the LOG

    // 3. The LOG file the engine left in the DB directory.
    let log = std::fs::read_to_string(dir.join("LOG")).expect("LOG");
    assert_eq!(log.matches("flush_begin").count(), log.matches("flush_end").count());
    assert!(log.contains("db_close"));
    println!("\nLOG has {} lines; first flush:", log.lines().count());
    for line in log.lines().filter(|l| l.contains("flush")).take(2) {
        println!("  {line}");
    }

    // 4. PerfContext: reopen with no block cache so one get crosses every
    //    layer, and break its wall time down per component.
    let mut opts = Options::new(Arc::new(PosixEnv::new()));
    opts.block_cache_bytes = 0;
    opts.info_log = Some(LogConfig { level: None, json: false }); // no LOG this time
    let db = open_shield(opts, path, shield_opts).expect("reopen");
    let wall = Instant::now();
    let (value, perf) =
        db.with_perf_context(|db| db.get(&ReadOptions::new(), b"user:10007").expect("get"));
    let wall_nanos = wall.elapsed().as_nanos() as u64;
    assert_eq!(value, Some(b"profile-10007".to_vec()));
    println!("\ncold SHIELD get: {wall_nanos} ns wall, components:");
    println!("  memtable_lookup = {:>7} ns", perf.memtable_lookup_nanos);
    println!("  block_read      = {:>7} ns  ({} blocks)", perf.block_read_nanos, perf.blocks_read);
    println!("  block_decrypt   = {:>7} ns", perf.block_decrypt_nanos);
    println!("  dek_resolve     = {:>7} ns  (per-file DEK via KDS/secure cache)", perf.dek_resolve_nanos);
    println!("  cache_lookup    = {:>7} ns", perf.cache_lookup_nanos);
    assert!(perf.block_decrypt_nanos > 0 && perf.dek_resolve_nanos > 0);
    assert!(perf.timed_nanos() <= wall_nanos);

    println!("\nobservability tour complete");
}
