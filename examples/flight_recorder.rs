//! Flight-recorder tour: traced operations over simulated remote
//! storage, the slow-op ring, windowed stats, the stall watchdog, and
//! the one-document debug bundle — all through the public API.
//!
//! ```sh
//! cargo run --release --example flight_recorder
//! ```

use std::sync::{Arc, Mutex};
use std::time::Duration;

use shield::{
    open_shield, Event, EventListener, ReadOptions, ShieldDb, ShieldOptions, WriteOptions,
};
use shield_core::json;
use shield_env::{Env, FaultInjectionEnv, FaultOp, FileKind, MemEnv, NetworkModel, RemoteEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::Options;

/// A user-supplied listener capturing the recorder's event stream.
#[derive(Default)]
struct Capture {
    events: Mutex<Vec<Event>>,
}

impl EventListener for Capture {
    fn on_event(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

fn open(env: Arc<dyn Env>, kds: Arc<LocalKds>, opts: impl FnOnce(Options) -> Options) -> ShieldDb {
    let mut o = Options::new(env).with_write_buffer_size(16 << 10);
    o.block_size = 256;
    o.compaction.l0_compaction_trigger = 2;
    open_shield(
        opts(o),
        "db",
        ShieldOptions::new(kds as Arc<dyn Kds>, ServerId(1), b"flight recorder tour"),
    )
    .expect("open shield")
}

fn key(i: u32) -> Vec<u8> {
    format!("key-{i:05}").into_bytes()
}

fn populate(env: Arc<dyn Env>, kds: Arc<LocalKds>, n: u32) {
    let db = open(env, kds, |o| o);
    let w = WriteOptions::default();
    for i in 0..n {
        db.put(&w, &key(i), format!("value-{i}").as_bytes()).expect("put");
    }
    db.compact_all().expect("compact_all");
}

fn main() {
    // 1. Trace a cold batched lookup over remote storage. The span tree
    //    shows exactly where a multi_get's wall time went: batched
    //    read_at_many windows, verification, single-flight waits.
    let net = NetworkModel {
        rtt: Duration::from_micros(200),
        bandwidth_bytes_per_sec: Some(125_000_000),
        write_packet_bytes: 64 * 1024,
    };
    let env: Arc<dyn Env> = Arc::new(RemoteEnv::new(Arc::new(MemEnv::new()), net));
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    populate(env.clone(), kds.clone(), 256);
    let db = open(env, kds, Options::with_tracing);
    let keys: Vec<Vec<u8>> = (0..256).step_by(4).take(64).map(key).collect();
    let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    for slot in db.multi_get(&ReadOptions::new(), &refs) {
        assert!(slot.expect("multi_get slot").is_some());
    }
    let spans = db.trace_spans();
    let root = spans
        .iter()
        .find(|s| s.parent_id == 0 && s.name == "multi_get")
        .expect("multi_get root span");
    println!("cold multi_get(64) over remote storage — trace {}:", root.trace_id);
    let mut tree: Vec<_> = spans.iter().filter(|s| s.trace_id == root.trace_id).collect();
    tree.sort_by_key(|s| s.span_id);
    for s in tree {
        let indent = if s.parent_id == 0 { "" } else { "  " };
        println!("  {indent}{:<18} {:>9} ns  {:?}", s.name, s.dur_nanos, s.attrs);
    }
    let windows: Vec<_> = spans
        .iter()
        .filter(|s| s.trace_id == root.trace_id && s.name == "read_window")
        .collect();
    let window_nanos: u64 = windows.iter().map(|s| s.dur_nanos).sum();
    assert!(windows.len() >= 2, "expected batched windows, got {}", windows.len());
    assert!(window_nanos <= root.dur_nanos);
    println!(
        "  {} batched windows, {window_nanos} ns of {} ns wall\n",
        windows.len(),
        root.dur_nanos
    );

    // 2. Slow-op capture: a 10 ms injected storage delay pushes a cold
    //    get over a 2 ms threshold; the ring keeps its span tree and
    //    PerfContext for post-hoc diagnosis.
    let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    populate(Arc::new(fenv.clone()), kds.clone(), 128);
    let capture = Arc::new(Capture::default());
    let db = open(Arc::new(fenv.clone()), kds, |o| {
        o.with_slow_op_threshold(Duration::from_millis(2))
            .with_watchdog_deadline(Duration::from_millis(40))
            .with_event_listener(capture.clone())
    });
    fenv.delay_n_times(FileKind::Sst, FaultOp::Read, Duration::from_millis(10), 8);
    assert!(db.get(&ReadOptions::new(), &key(17)).expect("get").is_some());
    let slow = db.slow_ops();
    let s = slow.iter().find(|s| s.op == "get").expect("slow get captured");
    println!(
        "slow op: {} took {:.1} ms (threshold {:.1} ms), {} spans, block_read = {} ns",
        s.op,
        s.wall_nanos as f64 / 1e6,
        s.threshold_nanos as f64 / 1e6,
        s.spans.len(),
        s.perf.block_read_nanos
    );
    assert!(capture.events.lock().unwrap().iter().any(|e| e.name() == "slow_op"));

    // 3. Stall watchdog: an always-on 300 ms read delay pins the next
    //    get past its 40 ms deadline; the watchdog names the stuck op
    //    and its live span stack while it is still running.
    fenv.delay_always(FileKind::Sst, FaultOp::Read, Duration::from_millis(300));
    assert!(db.get(&ReadOptions::new(), &key(31)).expect("get").is_some());
    fenv.disarm_all();
    let events = capture.events.lock().unwrap();
    let flagged = events
        .iter()
        .find_map(|e| match e {
            Event::Watchdog { op, elapsed_micros, stack, .. } => {
                Some((*op, *elapsed_micros, stack.clone()))
            }
            _ => None,
        })
        .expect("watchdog flagged the stuck get");
    drop(events);
    println!("watchdog: '{}' pinned for {} µs, stack: {}", flagged.0, flagged.1, flagged.2);

    // 4. Windowed stats + the debug bundle: one JSON document carrying
    //    the metrics report, recent windows, slow ops, the trace ring,
    //    and the LOG tail — everything above, shippable in one blob.
    let bundle = db.debug_bundle();
    let doc = json::parse(&bundle).expect("bundle parses");
    for section in ["metrics", "windows", "slow_ops", "trace_spans", "log_tail"] {
        assert!(doc.get(section).is_some(), "bundle missing {section}");
    }
    let schema = doc
        .get("metrics")
        .and_then(|m| m.get("schema"))
        .and_then(|s| s.as_str())
        .expect("metrics schema");
    println!("debug bundle: {} bytes, metrics schema {schema}", bundle.len());

    println!("\nflight-recorder tour complete");
}
