//! Parallel subcompactions over disaggregated storage (DESIGN.md §4f).
//!
//! Loads the same workload into two SHIELD stores on simulated remote
//! storage — one compacting serially, one with `max_subcompactions = 4` —
//! then compacts both to the bottom and shows that the parallel store did
//! the identical work (same data, fully readable, DEKs rotated) while
//! splitting every large merge into byte-balanced key subranges whose
//! network waits overlap.
//!
//! ```sh
//! cargo run --release --example subcompaction
//! ```

use std::sync::Arc;

use shield::{open_shield, ShieldOptions, WriteOptions};
use shield_env::{Env, MemEnv, NetworkModel, RemoteEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Options, ReadOptions};

fn open(max_subcompactions: usize) -> shield::ShieldDb {
    let backing: Arc<dyn Env> = Arc::new(MemEnv::new());
    let remote = RemoteEnv::new(backing, NetworkModel::intra_datacenter());
    let mut opts = Options::new(Arc::new(remote))
        .with_write_buffer_size(64 << 10)
        .with_background_jobs(4)
        .with_max_subcompactions(max_subcompactions);
    opts.compaction.l0_compaction_trigger = 4;
    opts.compaction.target_file_size = 64 << 10;
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    open_shield(opts, "db", ShieldOptions::new(kds as Arc<dyn Kds>, ServerId(1), b"pk"))
        .expect("open")
}

fn main() {
    let w = WriteOptions::default();
    let stores = [("serial", open(1)), ("parallel", open(4))];
    for (name, db) in &stores {
        for i in 0..8_000u32 {
            let key = format!("k{:06}", i.wrapping_mul(2654435761) % 12_000);
            db.put(&w, key.as_bytes(), format!("v{i:06}-{}", "x".repeat(80)).as_bytes())
                .expect("put");
        }
        db.db.flush().expect("flush");
        let t = std::time::Instant::now();
        db.db.compact_all().expect("compact");
        let stats = db.statistics().snapshot();
        println!(
            "{name:>8}: compact_all {:>5.2}s — {} compactions, {} subcompactions \
             (worker time {:.2}s)",
            t.elapsed().as_secs_f64(),
            stats.compactions,
            stats.subcompactions,
            stats.subcompaction_micros as f64 / 1e6,
        );
    }

    let r = ReadOptions::new();
    let serial = stores[0].1.db.scan(&r, b"", usize::MAX >> 1).expect("scan");
    let parallel = stores[1].1.db.scan(&r, b"", usize::MAX >> 1).expect("scan");
    assert_eq!(serial, parallel, "stores diverged");
    assert!(!serial.is_empty());

    let serial_subs = stores[0].1.statistics().snapshot().subcompactions;
    let parallel_subs = stores[1].1.statistics().snapshot().subcompactions;
    assert_eq!(serial_subs, 0, "serial store must never split");
    assert!(parallel_subs > 0, "parallel store never split a compaction");
    println!(
        "identical contents ({} keys); parallel store split its merges into {} subranges",
        serial.len(),
        parallel_subs,
    );
}
