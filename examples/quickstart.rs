//! Quickstart: open a SHIELD-encrypted key-value store, write, read, scan,
//! and watch the key-management machinery at work.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use shield::{open_shield, ReadOptions, ShieldOptions, WriteOptions};
use shield_env::PosixEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::Options;

fn main() {
    let dir = std::env::temp_dir().join("shield-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.to_str().unwrap();

    // 1. A key distribution service (in production: SSToolkit, Kerberos…).
    let kds = Arc::new(LocalKds::new(KdsConfig::sstoolkit_like()));

    // 2. Open a SHIELD database: every file gets its own DEK, the WAL is
    //    encrypted through a 512-byte application buffer, and DEKs are
    //    cached on disk under the passkey.
    let env = Arc::new(PosixEnv::new());
    let db = open_shield(
        Options::new(env),
        path,
        ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"correct horse battery"),
    )
    .expect("open");

    // 3. Normal KV usage.
    let w = WriteOptions::default();
    let r = ReadOptions::new();
    for i in 0..10_000u32 {
        db.put(&w, format!("user:{i:05}").as_bytes(), format!("profile-{i}").as_bytes())
            .expect("put");
    }
    db.delete(&w, b"user:00042").expect("delete");
    db.flush().expect("flush");

    assert_eq!(db.get(&r, b"user:00007").expect("get"), Some(b"profile-7".to_vec()));
    assert_eq!(db.get(&r, b"user:00042").expect("get"), None);

    let page = db.scan(&r, b"user:00100", 5).expect("scan");
    println!("scan from user:00100 →");
    for (k, v) in &page {
        println!("  {} = {}", String::from_utf8_lossy(k), String::from_utf8_lossy(v));
    }

    // Batched lookup: per-slot results, one overlapped I/O round per file
    // instead of a storage round trip per key (DESIGN.md §4i).
    let batch: Vec<Vec<u8>> = [7u32, 42, 9_999, 77]
        .iter()
        .map(|i| format!("user:{i:05}").into_bytes())
        .collect();
    let batch_refs: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
    let hits = db.multi_get(&r, &batch_refs);
    assert_eq!(hits[0].as_ref().expect("slot").as_deref(), Some(b"profile-7".as_slice()));
    assert_eq!(hits[1].as_ref().expect("slot").as_deref(), None); // deleted
    assert_eq!(hits[2].as_ref().expect("slot").as_deref(), Some(b"profile-9999".as_slice()));
    assert_eq!(hits[3].as_ref().expect("slot").as_deref(), Some(b"profile-77".as_slice()));
    let snap = db.statistics().snapshot();
    println!(
        "\nmulti_get({}) resolved in {} batched submission(s) carrying {} block read(s)",
        batch.len(),
        snap.batched_reads,
        snap.batch_read_requests
    );

    // 4. Key-management visibility: one DEK per file, all served by the KDS.
    let kstats = kds.stats();
    let rstats = db.resolver.stats();
    println!("\nKDS: {} DEKs generated, {} fetched, {} denied", kstats.generated, kstats.fetched, kstats.denied);
    println!(
        "resolver: {} cache hits, {} misses (secure cache saves KDS round-trips)",
        rstats.cache_hits, rstats.cache_misses
    );
    println!("live DEKs at the KDS: {}", kds.live_dek_count());
    println!("levels: {:?}", db.level_summary());
    println!("\nDatabase at {path} — every byte of WAL/SST/MANIFEST is ciphertext.");
}
