//! DEK-rotation audit (paper §5.2): demonstrates that compaction rotates
//! keys — output files carry fresh DEKs, and the input files' DEKs are
//! revoked at the KDS and pruned from the secure cache, so a leaked old
//! DEK decrypts nothing that still exists.
//!
//! ```sh
//! cargo run --release --example key_rotation_audit
//! ```

use std::collections::BTreeSet;
use std::sync::Arc;

use shield::{open_shield, ShieldOptions, WriteOptions};
use shield_env::{Env, FileKind, MemEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::encryption::EncryptionConfig;
use shield_lsm::Options;

/// Collects the DEK-IDs named in the plaintext headers of all SST files.
fn live_sst_dek_ids(env: &MemEnv, dir: &str) -> BTreeSet<String> {
    env.list_dir(dir)
        .expect("list")
        .into_iter()
        .filter(|n| n.ends_with(".sst"))
        .filter_map(|n| {
            EncryptionConfig::peek_dek_id(env, &shield_env::join_path(dir, &n), FileKind::Sst)
                .ok()
                .flatten()
        })
        .map(|id| id.to_string())
        .collect()
}

fn main() {
    let env = MemEnv::new();
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let mut base = Options::new(Arc::new(env.clone())).with_write_buffer_size(32 << 10);
    base.compaction.l0_compaction_trigger = 2;
    let db = open_shield(
        base,
        "db",
        ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"audit-pass"),
    )
    .expect("open");

    // Phase 1: load data, flush — several L0 files, each with its own DEK.
    let w = WriteOptions::default();
    for i in 0..4_000u32 {
        db.put(&w, format!("k{:06}", i % 1000).as_bytes(), &[b'v'; 64]).expect("put");
    }
    db.flush().expect("flush");
    let before = live_sst_dek_ids(&env, "db");
    println!("before compaction: {} SST DEK(s)", before.len());
    for id in &before {
        println!("  dek {id}");
    }
    assert!(!before.is_empty());

    // Phase 2: force compaction — outputs get brand-new DEKs.
    db.compact_all().expect("compact");
    let after = live_sst_dek_ids(&env, "db");
    println!("\nafter compaction: {} SST DEK(s)", after.len());
    for id in &after {
        println!("  dek {id}");
    }

    let survivors: Vec<_> = before.intersection(&after).collect();
    println!("\nold DEKs still protecting live SSTs: {}", survivors.len());

    // Phase 3: the rotated-away DEKs are gone from the KDS — a leaked copy
    // is useless (§5.5, scenario 3).
    let mut revoked = 0;
    for id in before.difference(&after) {
        let raw = u128::from_str_radix(id, 16).expect("hex");
        if !kds.has_dek(shield_crypto::DekId(raw)) {
            revoked += 1;
        }
    }
    println!(
        "rotated-away DEKs revoked at the KDS: {revoked}/{}",
        before.difference(&after).count()
    );
    assert_eq!(revoked, before.difference(&after).count(), "every dead file's DEK must die");
    println!("\nCompaction rotated the keys at zero extra I/O cost — the §5.2 property.");
}
