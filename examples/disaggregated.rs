//! Disaggregated storage with a read-only instance (paper §2.2, §6.4).
//!
//! A primary LSM-KVS writes through a simulated intra-datacenter network
//! to disaggregated storage; a read-only instance on another "compute
//! node" opens the same files, resolves DEKs via the DEK-IDs in the file
//! metadata, and serves queries.
//!
//! ```sh
//! cargo run --release --example disaggregated
//! ```

use std::sync::Arc;

use shield::deploy::{DisaggregatedStorage, ReadOnlyInstance};
use shield::{open_shield, ShieldOptions, WriteOptions};
use shield_crypto::Algorithm;
use shield_env::{Env, MemEnv, NetworkModel};
use shield_kds::{DekResolver, Kds, KdsConfig, LocalKds, SecureDekCache, ServerId};
use shield_lsm::encryption::EncryptionConfig;
use shield_lsm::Options;

fn main() {
    // The storage cluster: an in-memory backing store behind a network
    // model (500 µs RTT, 1 Gbps — the paper's testbed profile).
    let backing: Arc<dyn Env> = Arc::new(MemEnv::new());
    let ds = DisaggregatedStorage::new(backing, NetworkModel::intra_datacenter());
    let kds = Arc::new(LocalKds::new(KdsConfig::sstoolkit_like()));

    // Primary instance on the compute node (server-1).
    let primary = open_shield(
        Options::new(ds.compute_mount()),
        "cluster/db",
        ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"primary-pass"),
    )
    .expect("open primary");

    let w = WriteOptions::default();
    for i in 0..5_000u32 {
        primary
            .put(&w, format!("order:{i:06}").as_bytes(), format!("{{\"total\": {i}}}").as_bytes())
            .expect("put");
    }
    primary.flush().expect("flush");
    println!("primary wrote 5000 orders over the simulated network");

    // A read-only instance on another compute node (server-3): it has its
    // own KDS identity and secure cache, and learns DEKs purely from the
    // DEK-IDs embedded in the shared files' metadata.
    let reader_cache = SecureDekCache::open(ds.compute_mount(), "cluster/reader.cache", b"reader-pass")
        .expect("reader cache");
    let reader_resolver = Arc::new(DekResolver::new(
        kds.clone() as Arc<dyn Kds>,
        Some(Arc::new(reader_cache)),
        ServerId(3),
        Algorithm::Aes128Ctr,
    ));
    let reader_cfg = EncryptionConfig::new(reader_resolver.clone());
    let reader = ReadOnlyInstance::open(ds.compute_mount(), "cluster/db", Some(reader_cfg))
        .expect("open read-only instance");

    let hit = reader.get(b"order:001234").expect("get").expect("present");
    println!("read-only instance served order:001234 = {}", String::from_utf8_lossy(&hit));
    let page = reader.scan(b"order:000100", 3).expect("scan");
    println!("read-only scan:");
    for (k, v) in &page {
        println!("  {} = {}", String::from_utf8_lossy(k), String::from_utf8_lossy(v));
    }

    let rs = reader_resolver.stats();
    println!(
        "\nreader DEK traffic: {} KDS fetches, then {} secure-cache hits",
        rs.cache_misses, rs.cache_hits
    );
    let io = ds.remote().io_stats().expect("stats").snapshot();
    println!(
        "network I/O: {:.1} MiB written, {:.1} MiB read across the DS link",
        io.total_written() as f64 / (1 << 20) as f64,
        io.total_read() as f64 / (1 << 20) as f64,
    );
}
