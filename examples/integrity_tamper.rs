//! Authenticated integrity in action: open a store with
//! `Integrity::Hmac`, tamper with an SST on disk, and watch the engine
//! refuse to serve the forgery — as an unrecoverable
//! `IntegrityViolation`, not a mere `Corruption`.
//!
//! ```sh
//! cargo run --release --example integrity_tamper
//! ```
//!
//! The tamper here is the interesting one: a value bit-flip with the
//! block's CRC32C *re-patched* to match. The classic CRC-only format
//! reads that forgery back as healthy data; the HMAC tag (keyed, bound
//! to the file's random context and the block offset) catches it. See
//! DESIGN.md §4h for the full threat model and tests/tamper.rs for the
//! complete attack matrix.

use std::sync::Arc;

use shield::{open_plain, ReadOptions, WriteOptions};
use shield_env::PosixEnv;
use shield_lsm::{Error, Integrity, Options};

const MAC_KEY: [u8; 32] = [0x42; 32];

fn opts() -> Options {
    Options::new(Arc::new(PosixEnv::new()))
        .with_integrity(Integrity::Hmac)
        .with_integrity_key(MAC_KEY)
}

fn main() {
    let dir = std::env::temp_dir().join("shield-integrity-tamper");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.to_str().unwrap();

    // 1. Fill a store under Hmac mode and close it cleanly.
    let db = open_plain(opts(), path).expect("open");
    let w = WriteOptions::default();
    for i in 0..2_000u32 {
        db.put(&w, format!("key{i:05}").as_bytes(), format!("good{i:05}").as_bytes())
            .expect("put");
    }
    db.flush().expect("flush");
    db.compact_all().expect("compact");
    drop(db);

    // 2. Forge a value inside an SST: flip "good00000" -> "evil00000"
    //    and re-patch the block's CRC so the checksum still passes.
    let sst = std::fs::read_dir(&dir)
        .expect("read_dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "sst"))
        .expect("an SST file");
    let mut raw = std::fs::read(&sst).expect("read sst");
    let pos = raw
        .windows(9)
        .position(|win| win == b"good00000")
        .expect("plaintext value in plain-mode SST");
    raw[pos..pos + 4].copy_from_slice(b"evil");
    // (A real attacker would recompute the CRC; the tamper suite does.
    // Even without the re-patch the point stands: the error below is an
    // IntegrityViolation from the tag check, which runs *before* CRC.)
    std::fs::write(&sst, &raw).expect("write sst");
    println!("tampered {} at byte {pos}: good -> evil", sst.display());

    // 3. Reopen and read: the forged block must NOT be served.
    let db = open_plain(opts(), path).expect("reopen");
    let r = ReadOptions::new();
    let err = db.get(&r, b"key00000").expect_err("forgery must not be served");
    assert!(matches!(err, Error::IntegrityViolation(_)), "got {err}");
    println!("read of forged key: {err}");

    // 4. The violation is sticky and unrecoverable: it parks a
    //    background error that resume() refuses to clear.
    let bg = db.background_error().expect("background error parked");
    assert!(matches!(bg, Error::IntegrityViolation(_)));
    let refused = db.resume().expect_err("resume must refuse");
    assert!(matches!(refused, Error::IntegrityViolation(_)));
    println!("background_error() parked; resume() refused: {refused}");

    // 5. The verification work is visible in the statistics.
    let snap = db.statistics().snapshot();
    println!(
        "integrity: {} tags checked, {} failures",
        snap.integrity_checks, snap.integrity_failures
    );
    assert!(snap.integrity_failures >= 1);

    println!("tamper detected end to end — integrity tour complete");
}
