//! Fault-tolerance tour: crash recovery, storage-fault retry/resume, KDS
//! replica failover, and full-outage degraded mode — all driven through
//! the public API against a fault-injection environment.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use std::sync::Arc;
use std::time::Duration;

use shield::{open_shield, ShieldDb, ShieldOptions};
use shield_env::{FaultInjectionEnv, FaultOp, FileKind, MemEnv};
use shield_kds::{Kds, KdsConfig, ReplicatedKds, RetryPolicy, ServerId};
use shield_lsm::{Error, Options, ReadOptions, WriteOptions};

fn main() {
    run();
}

#[allow(clippy::too_many_lines)]
fn run() {
    let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
    let kds = Arc::new(ReplicatedKds::new(3, KdsConfig::default()));
    let w = WriteOptions::default();
    let wsync = WriteOptions { sync: true };
    let r = ReadOptions::new();

    let open = |fenv: &FaultInjectionEnv| -> ShieldDb {
        let mut sopts =
            ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"tour passkey");
        sopts.retry_policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        open_shield(Options::new(Arc::new(fenv.clone())), "db", sopts).expect("open")
    };

    // ---- Scene 1: crash with a torn, unsynced WAL tail --------------------
    println!("== scene 1: crash with a torn WAL tail ==");
    let db = open(&fenv);
    for i in 0..200u32 {
        db.put(&w, format!("acked:{i:04}").as_bytes(), b"durable").expect("put");
    }
    db.put(&wsync, b"acked:marker", b"synced").expect("sync put");
    fenv.torn_write_n_times(FileKind::Wal, 1);
    for j in 0..4u32 {
        let _ = db.put(&w, format!("doomed:{j}").as_bytes(), &[b'd'; 300]);
    }
    fenv.disarm_all();
    db.db.simulate_process_crash();
    fenv.crash().expect("crash");
    let db = open(&fenv);
    assert_eq!(db.get(&r, b"acked:marker").expect("get"), Some(b"synced".to_vec()));
    assert_eq!(db.get(&r, b"acked:0199").expect("get"), Some(b"durable".to_vec()));
    let survivors = (0..4u32)
        .filter(|j| db.get(&r, format!("doomed:{j}").as_bytes()).expect("get").is_some())
        .count();
    let fs = fenv.stats();
    println!("  after crash+reopen: all 201 synced keys present");
    println!("  unsynced tail: {survivors}/4 survived (any number is legal)");
    println!("  env: {} crash(es), {} torn write(s)", fs.crashes, fs.torn_writes);

    // ---- Scene 2: transient SST fault retried by the background job -------
    println!("== scene 2: transient SST append fault during flush ==");
    fenv.error_once(FileKind::Sst, FaultOp::Append);
    for i in 0..50u32 {
        db.put(&w, format!("retry:{i:03}").as_bytes(), b"v").expect("put");
    }
    db.flush().expect("flush survives one injected fault");
    let stats = db.statistics().snapshot();
    println!(
        "  flush succeeded; bg_retries={} env_faults_injected={}",
        stats.bg_retries, stats.env_faults_injected
    );
    assert!(stats.bg_retries >= 1, "flush should have retried the soft fault");

    // ---- Scene 3: persistent fault -> sticky error -> resume --------------
    println!("== scene 3: persistent SST faults park a resumable error ==");
    fenv.error_n_times(FileKind::Sst, FaultOp::Append, 10_000);
    for i in 0..50u32 {
        db.put(&w, format!("stuck:{i:03}").as_bytes(), b"v").expect("put");
    }
    let err = db.flush().expect_err("flush must fail while faults persist");
    println!("  flush error: {err}");
    let bg = db.background_error().expect("sticky background error");
    println!("  background_error(): {bg}");
    assert_eq!(db.get(&r, b"acked:marker").expect("read during bg error"), Some(b"synced".to_vec()));
    println!("  reads still serve while writes are parked");
    fenv.disarm_all();
    db.resume().expect("resume after disarm");
    assert!(db.background_error().is_none());
    db.flush().expect("flush after resume");
    println!("  resume() cleared it; flush now ok (resumes={})", db.statistics().snapshot().resumes);

    // probe: resume() on a healthy engine is a no-op
    db.resume().expect("resume on healthy db is Ok");
    println!("  probe: resume() with no pending error -> Ok (no-op)");

    // ---- Scene 4: one KDS replica down -> transparent failover ------------
    println!("== scene 4: single KDS replica failure ==");
    kds.fail_replica(0);
    for i in 0..30u32 {
        db.put(&w, format!("failover:{i:02}").as_bytes(), b"v").expect("put");
    }
    db.flush().expect("flush with one replica down");
    println!("  flush (new DEK fetch) ok; kds failovers={}", kds.failover_count());
    kds.recover_replica(0);
    // probe: out-of-range replica index is a documented no-op
    kds.fail_replica(99);
    kds.recover_replica(42);
    db.flush().expect("flush unaffected by out-of-range replica ops");
    println!("  probe: fail_replica(99)/recover_replica(42) -> no-op, engine unaffected");

    // ---- Scene 5: total KDS outage -> degraded mode -> recovery -----------
    println!("== scene 5: total KDS outage ==");
    kds.fail_all();
    // Note: flushing an *empty* memtable during the outage is a no-op and
    // succeeds — the failure needs actual data, because only a real flush
    // rotates the WAL and demands a fresh DEK.
    db.flush().expect("empty flush is a no-op even during an outage");
    for i in 0..30u32 {
        db.put(&w, format!("outage:{i:02}").as_bytes(), b"v").expect("puts use the live WAL DEK");
    }
    let err = db.flush().expect_err("WAL rotation needs a fresh DEK");
    assert!(matches!(err, Error::Encryption(_)), "unexpected error class: {err}");
    println!("  flush during outage: {err}");
    assert!(db.resolver.is_degraded(), "resolver should be degraded");
    assert_eq!(db.get(&r, b"acked:marker").expect("degraded read"), Some(b"synced".to_vec()));
    let rs = db.resolver.stats();
    let gauges = db.statistics().snapshot();
    println!(
        "  degraded mode: reads on cached DEKs ok; retries={} degraded_hits={} (gauge {} / {})",
        rs.retries, rs.degraded_hits, gauges.resolver_retries, gauges.resolver_degraded_hits
    );
    kds.recover_all();
    db.resume().expect("resume after KDS recovery");
    db.flush().expect("flush after recovery");
    assert!(!db.resolver.is_degraded());
    assert_eq!(db.get(&r, b"outage:00").expect("get"), Some(b"v".to_vec()));
    println!("  KDS back: resume + flush ok, outage-era writes durable, degraded flag cleared");

    // ---- Final: integrity sweep ------------------------------------------
    let report = db.verify_integrity().expect("verify_integrity");
    println!("== integrity: {report:?} ==");
    println!("fault-tolerance tour complete");
}
