//! Offloaded compaction with metadata-enabled DEK sharing (paper §5.6),
//! including the breached-server response: revoking the compaction
//! server's KDS authorization locks it out mid-run.
//!
//! ```sh
//! cargo run --release --example offloaded_compaction
//! ```

use std::sync::Arc;

use shield::deploy::{DisaggregatedStorage, OffloadedCompactor};
use shield::{open_shield, ShieldOptions, WriteOptions};
use shield_crypto::Algorithm;
use shield_env::{Env, MemEnv, NetworkModel};
use shield_kds::{DekResolver, Kds, KdsConfig, LocalKds, SecureDekCache, ServerId};
use shield_lsm::encryption::EncryptionConfig;
use shield_lsm::Options;

fn main() {
    let backing: Arc<dyn Env> = Arc::new(MemEnv::new());
    let ds = DisaggregatedStorage::new(backing, NetworkModel::unlimited());
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));

    // The compaction worker lives on the storage server (server-2): its
    // I/O is storage-local, its DEKs come from the KDS via the DEK-IDs in
    // SST metadata, and its secure cache is its own.
    let storage_env = ds.storage_local();
    let compactor_cache =
        SecureDekCache::open(storage_env.clone(), "compactor.cache", b"compactor-pass")
            .expect("cache");
    let compactor_resolver = Arc::new(DekResolver::new(
        kds.clone() as Arc<dyn Kds>,
        Some(Arc::new(compactor_cache)),
        ServerId(2),
        Algorithm::Aes128Ctr,
    ));
    let compactor = OffloadedCompactor::new(
        storage_env,
        "db",
        Some(EncryptionConfig::new(compactor_resolver.clone()).with_chunks(64 << 10, 4)),
    );

    // The primary (server-1) hands its compactions to the worker.
    let mut base = Options::new(ds.compute_mount()).with_write_buffer_size(64 << 10);
    base.compaction.l0_compaction_trigger = 2;
    base.compaction_executor = Some(compactor.clone());
    let db = open_shield(
        base,
        "db",
        ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"primary-pass"),
    )
    .expect("open");

    let w = WriteOptions::default();
    for i in 0..20_000u32 {
        db.put(&w, format!("k{:08}", i % 5000).as_bytes(), &[b'v'; 64]).expect("put");
    }
    db.compact_all().expect("compact");
    println!("offloaded compactions executed on the storage server: {}", compactor.jobs_executed());
    let cs = compactor_resolver.stats();
    println!(
        "compactor DEK traffic: {} generated (outputs), {} fetched/cached (inputs: {} misses, {} hits)",
        cs.generated, cs.cache_misses + cs.cache_hits, cs.cache_misses, cs.cache_hits
    );
    println!("live DEKs after rotation-by-compaction: {}", kds.live_dek_count());

    // Breach response (§5.4): revoke the compaction server. Its next job
    // is denied by the KDS and surfaces as a background error.
    kds.revoke_server(ServerId(2));
    println!("\nrevoked server-2 at the KDS; writing more data…");
    let mut locked_out = false;
    for i in 0..50_000u32 {
        if db.put(&w, format!("x{i:08}").as_bytes(), &[b'v'; 64]).is_err() {
            locked_out = true;
            break;
        }
    }
    locked_out |= db.compact_all().is_err();
    assert!(locked_out, "revoked compactor must be locked out");
    println!("compaction denied: the breached server can no longer obtain DEKs.");
}
