//! Facade crate for the SHIELD reproduction workspace.
//!
//! Re-exports the public API of every workspace crate so that examples and
//! integration tests can use a single import root. See the `shield` crate
//! for the high-level database builders and deployment helpers.

pub use shield;
pub use shield_bench as bench;
pub use shield_crypto as crypto;
pub use shield_env as env;
pub use shield_kds as kds;
pub use shield_lsm as lsm;
