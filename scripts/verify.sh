#!/usr/bin/env bash
# Repo verification tiers.
#
#   tier 1: cargo build --release && cargo test -q     (the seed gate)
#   tier 2: cargo test -q --test fault_injection       (torture matrix)
#   lint  : no .unwrap() in library (non-test) code of the hardened
#           engine paths crates/lsm/src/{wal.rs,sst/,db/} — recoverable
#           errors must stay errors (see DESIGN.md §4c).
#
# Usage: scripts/verify.sh [--quick]   (--quick skips the release build)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== lint: unwrap gate (crates/lsm/src/{wal,sst,db} library code) =="
fail=0
for f in crates/lsm/src/wal.rs $(find crates/lsm/src/sst crates/lsm/src/db -name '*.rs' | sort); do
    # Only scan up to the first #[cfg(test)]: tests may unwrap freely.
    hits=$(awk '/#\[cfg\(test\)\]/{exit} /\.unwrap\(\)/{print FILENAME": "FNR": "$0}' "$f")
    if [[ -n "$hits" ]]; then
        echo "$hits"
        fail=1
    fi
done
if [[ $fail -ne 0 ]]; then
    echo "FAIL: .unwrap() in engine library code; return an Error (or route"
    echo "      infallible slice→array conversions through shield_lsm::varint::fixed)."
    exit 1
fi
echo "ok"

if [[ $quick -eq 0 ]]; then
    echo "== tier 1a: release build =="
    cargo build --release
fi

echo "== tier 1b: workspace tests =="
cargo test -q

echo "== tier 2: fault-injection torture matrix =="
cargo test -q --test fault_injection

echo "ALL VERIFICATION TIERS PASSED"
