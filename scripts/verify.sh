#!/usr/bin/env bash
# Repo verification tiers.
#
#   tier 1: cargo build --release && cargo test -q     (the seed gate)
#   tier 2: cargo test -q --test fault_injection       (torture matrix)
#   tier 3: bench-smoke — crypto kernel perf-regression gate: batched
#           AES-CTR must stay ≥2x (ChaCha20 ≥1.5x) the scalar reference
#           on 4 KiB payloads, refreshing BENCH_crypto.json
#           (see DESIGN.md § perf kernels).
#   tier 4: obs-smoke — observability gate: a small SHIELD workload must
#           pair flush/compaction begin+end events in its LOG, the
#           shield_metrics_v1 JSON must carry every stable key, and a
#           *disabled* PerfContext timer pair must cost < 2% of one
#           4 KiB chunk encryption (see DESIGN.md §4e), refreshing
#           OBS_metrics.json.
#   tier 5: compaction-stress — parallel-subcompaction gate: the
#           differential equivalence suite (serial vs subrange-stitched
#           merges, all three encryption modes, boundary regression) plus
#           the concurrent writer/iterator/snapshot stress with
#           max_subcompactions=4, and the bench binary's engagement
#           check over simulated remote storage (see DESIGN.md §4f).
#   tier 6: read-path — unified BlockFetcher gate: the cache-model
#           equivalence/pinning/single-flight/readahead suite, plus the
#           readpath bench's engagement check over simulated remote
#           storage (8-thread hot-key misses must coalesce, readahead
#           must prefetch) in all three encryption modes
#           (see DESIGN.md §4g).
#   tier 7: adversarial — authenticated-integrity gate: the tamper
#           matrix (bit-flips, CRC-repatch forgeries, block swaps,
#           cross-file splices, WAL forgery/replay, truncation, the
#           rollback negative control, across plain/EncFS/SHIELD ×
#           crc/hmac), the hostile-input fuzzers over every persisted-
#           bytes parser, and the integrity bench's engagement check
#           (HMAC runs verify every block, clean data verifies clean)
#           (see DESIGN.md §4h).
#   tier 8: batched-io — multi_get gate: the differential suite
#           (multi_get ≡ serial gets across plain/EncFS/SHIELD,
#           snapshots, memtable residents, per-slot fault isolation),
#           plus the multiget bench's engagement check over simulated
#           remote storage — the batch must actually reach the batched
#           read path (nonzero batched_reads carrying several requests
#           per submission) and scans must prefetch
#           (see DESIGN.md §4i).
#   tier 9: trace-smoke — flight-recorder gate: the flight_recorder
#           suite (cold multi_get trace shape over remote storage,
#           slow-op capture under an injected 10 ms env delay, the
#           stall watchdog under a stuck-read fault, debug-bundle JSON)
#           plus the metrics_schema golden-key suite, plus the
#           trace_smoke bench: the same scenarios end to end and the
#           < 2% disabled-overhead gate re-measured against the
#           trace::span hook now compiled into the hot paths
#           (see DESIGN.md §4j).
#   lint  : no .unwrap() in library (non-test) code of the hardened
#           engine paths crates/lsm/src/{wal.rs,sst/,db/} — recoverable
#           errors must stay errors (see DESIGN.md §4c); plus clippy's
#           needless_range_loop over the crypto crate so hot loops stay
#           iterator-shaped, and clippy -D warnings over the
#           observability crate shield-core so the zero-dep types stay
#           clean, and clippy -D warnings over shield-lsm so the
#           rewritten cache/fetcher read path stays clean, and clippy
#           -D warnings over shield-crypto so the HMAC/KDF kernels stay
#           clean, and clippy -D warnings over shield-env so the batched
#           read queue and network model stay clean (all skipped if
#           clippy is unavailable).
#
# Usage: scripts/verify.sh [--quick]
#   --quick skips the release build and the tiers that need it
#   (clippy gate, tier 3 bench-smoke).

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== lint: unwrap gate (crates/lsm/src/{wal,sst,db} library code) =="
fail=0
for f in crates/lsm/src/wal.rs $(find crates/lsm/src/sst crates/lsm/src/db -name '*.rs' | sort); do
    # Only scan up to the first #[cfg(test)]: tests may unwrap freely.
    hits=$(awk '/#\[cfg\(test\)\]/{exit} /\.unwrap\(\)/{print FILENAME": "FNR": "$0}' "$f")
    if [[ -n "$hits" ]]; then
        echo "$hits"
        fail=1
    fi
done
if [[ $fail -ne 0 ]]; then
    echo "FAIL: .unwrap() in engine library code; return an Error (or route"
    echo "      infallible slice→array conversions through shield_lsm::varint::fixed)."
    exit 1
fi
echo "ok"

if [[ $quick -eq 0 ]]; then
    echo "== lint: clippy gate (shield-crypto kernels) =="
    if cargo clippy --version >/dev/null 2>&1; then
        cargo clippy --release -q -p shield-crypto -- -D warnings
        echo "ok"
    else
        echo "skipped (cargo clippy unavailable)"
    fi

    echo "== lint: clippy gate (shield-core observability crate) =="
    if cargo clippy --version >/dev/null 2>&1; then
        cargo clippy --release -q -p shield-core -- -D warnings
        echo "ok"
    else
        echo "skipped (cargo clippy unavailable)"
    fi

    echo "== lint: clippy gate (shield-lsm cache/fetcher read path) =="
    if cargo clippy --version >/dev/null 2>&1; then
        cargo clippy --release -q -p shield-lsm -- -D warnings
        echo "ok"
    else
        echo "skipped (cargo clippy unavailable)"
    fi

    echo "== lint: clippy gate (shield-env batched I/O + network model) =="
    if cargo clippy --version >/dev/null 2>&1; then
        cargo clippy --release -q -p shield-env -- -D warnings
        echo "ok"
    else
        echo "skipped (cargo clippy unavailable)"
    fi

    echo "== tier 1a: release build =="
    cargo build --release
fi

echo "== tier 1b: workspace tests =="
cargo test -q

echo "== tier 2: fault-injection torture matrix =="
cargo test -q --test fault_injection

if [[ $quick -eq 0 ]]; then
    echo "== tier 3: bench-smoke (crypto kernel perf-regression gate) =="
    cargo run --release -q -p shield-bench --bin crypto -- --smoke --out BENCH_crypto.json
    for key in batched_mib_s scalar_mib_s cipher_init_ns speedup_4096; do
        if ! grep -q "\"$key\"" BENCH_crypto.json; then
            echo "FAIL: BENCH_crypto.json missing key $key"
            exit 1
        fi
    done
    echo "ok"

    echo "== tier 4: obs-smoke (event log + metrics + PerfContext gate) =="
    cargo run --release -q -p shield-bench --bin obs_smoke -- --out OBS_metrics.json
    for key in schema levels latencies_us tickers gauges; do
        if ! grep -q "\"$key\"" OBS_metrics.json; then
            echo "FAIL: OBS_metrics.json missing key $key"
            exit 1
        fi
    done
    echo "ok"
fi

echo "== tier 5: compaction-stress (parallel subcompactions) =="
cargo test -q --test subcompaction_equivalence
cargo test -q --test model_check concurrent_workload_under_parallel_compactions_matches_oracle
if [[ $quick -eq 0 ]]; then
    cargo run --release -q -p shield-bench --bin subcompaction -- --smoke --out /tmp/BENCH_subcompaction_smoke.json
fi
echo "ok"

echo "== tier 6: read-path (unified fetcher + cache model + readahead) =="
cargo test -q --test read_path
if [[ $quick -eq 0 ]]; then
    cargo run --release -q -p shield-bench --bin readpath -- --smoke --out /tmp/BENCH_readpath_smoke.json
fi
echo "ok"

echo "== tier 7: adversarial (tamper matrix + hostile-input fuzz + integrity bench) =="
cargo test -q --test tamper
cargo test -q --test hostile_inputs
if [[ $quick -eq 0 ]]; then
    cargo run --release -q -p shield-bench --bin integrity -- --smoke --out /tmp/BENCH_integrity_smoke.json
fi
echo "ok"

echo "== tier 8: batched-io (multi_get differential suite + batching engagement) =="
cargo test -q --test multi_get
if [[ $quick -eq 0 ]]; then
    cargo run --release -q -p shield-bench --bin multiget -- --smoke --out /tmp/BENCH_multiget_smoke.json
    if ! grep -q '"batched_reads": [1-9]' /tmp/BENCH_multiget_smoke.json; then
        echo "FAIL: smoke multiget bench reported zero batched_reads"
        exit 1
    fi
fi
echo "ok"

echo "== tier 9: trace-smoke (flight recorder + golden schema + disabled overhead) =="
cargo test -q --test flight_recorder
cargo test -q --test metrics_schema
if [[ $quick -eq 0 ]]; then
    cargo run --release -q -p shield-bench --bin trace_smoke -- --out /tmp/TRACE_smoke.json
fi
echo "ok"

echo "ALL VERIFICATION TIERS PASSED"
