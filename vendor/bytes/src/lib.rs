//! Offline shim for the subset of `bytes` this workspace uses: a cheaply
//! cloneable, sliceable, immutable byte buffer backed by `Arc<[u8]>`.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Clones and slices share
/// the same allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Wraps a static slice (copied here; semantics are identical).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length of the view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of bounds (len {len})");
        Bytes { data: self.data.clone(), start: self.start + begin, end: self.start + end }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let ss = s.slice(..2);
        assert_eq!(&ss[..], &[1, 2]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn copy_and_eq() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert!(a == b"abc"[..]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(..4);
    }
}
