//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Runs each benchmark in "smoke mode": a short fixed iteration count with
//! one line of timing output per benchmark. No statistics, plots, or
//! baselines — the point is that `cargo bench` compiles, runs quickly, and
//! prints comparable per-iteration numbers.

use std::fmt;
use std::time::Instant;

/// Measured throughput unit attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a parameter value (e.g. a size or label).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where an id is expected.
pub trait IntoBenchmarkId {
    /// Converts into the id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over a short fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup pass.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput used in reported rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.sample_size as u64, elapsed_ns: 0 };
        f(&mut b);
        self.report(&id.into_id(), &b);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let mut b = Bencher { iters: self.sample_size as u64, elapsed_ns: 0 };
        f(&mut b, input);
        self.report(&id.into_id(), &b);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, b: &Bencher) {
        let per_iter = if b.iters == 0 { 0 } else { b.elapsed_ns / u128::from(b.iters) };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0 => {
                let mbps = n as f64 * 1e9 / per_iter as f64 / (1 << 20) as f64;
                format!("  {mbps:10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) if per_iter > 0 => {
                let eps = n as f64 * 1e9 / per_iter as f64;
                format!("  {eps:10.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{id}: {per_iter} ns/iter ({} iters){rate}",
            self.name, b.iters
        );
        self.criterion.benchmarks_run += 1;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Accepted for source compatibility; CLI args are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("default").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(runs >= 3);
        assert_eq!(c.benchmarks_run, 2);
    }
}
