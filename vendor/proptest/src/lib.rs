//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Differences from real proptest: generation is driven by a
//! deterministic per-test SplitMix64 stream (seeded from the test name),
//! and failing cases are not shrunk — the panic message carries the case
//! number, which is stable across runs, so failures still reproduce.

use std::fmt;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic RNG driving value generation (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary value (typically a test-name hash).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e3779b97f4a7c15 }
    }

    /// Seeds deterministically from a test name.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait StrategyDyn<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyDyn<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn StrategyDyn<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice over same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms; weights must not all be zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(arms.iter().any(|(w, _)| *w > 0), "prop_oneof! needs a nonzero weight");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>() and ranges
// ---------------------------------------------------------------------------

/// Types with a full-range default strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full range of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-range strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                (lo + rng.below(span)) as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

// ---------------------------------------------------------------------------
// Collection / option strategies
// ---------------------------------------------------------------------------

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size bound accepted by collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vec of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Set of distinct values from `element`, target size drawn from `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng).max(self.size.min);
            let mut out = std::collections::BTreeSet::new();
            // Duplicates shrink the set; bound the retries so tiny element
            // domains cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.size.min,
                "btree_set strategy could not reach the minimum size"
            );
            out
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (see [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` from `inner` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner config + errors
// ---------------------------------------------------------------------------

/// Runner configuration (`cases` is the only field this shim honours).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32, max_shrink_iters: 0 }
    }
}

/// Failure raised by `prop_assert!` family; aborts the current case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `fn name(pat in strategy, ..)`
/// items (attributes and doc comments included).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} of {}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts inside a property test; fails the current case on false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: both sides are {:?}", l);
    }};
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        let s = crate::collection::vec(any::<u8>(), 0..50);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn union_honours_weights() {
        let mut rng = TestRng::new(9);
        let s = prop_oneof![10 => Just(1u8), 1 => Just(2u8)];
        let mut ones = 0;
        for _ in 0..500 {
            if s.generate(&mut rng) == 1 {
                ones += 1;
            }
        }
        assert!(ones > 350, "weighted arm picked only {ones}/500");
    }

    #[test]
    fn btree_set_hits_min_size() {
        let mut rng = TestRng::new(1);
        let s = crate::collection::btree_set(0u32..1_000_000, 10..20);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() >= 10 && set.len() < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(
            mut xs in crate::collection::vec(any::<u16>(), 1..30),
            flag in crate::option::of(0u8..4),
        ) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            if let Some(f) = flag {
                prop_assert!(f < 4);
            }
        }
    }
}
