//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Backed by `std::sync` primitives; lock poisoning is swallowed (a
//! panicking holder does not poison the lock, matching parking_lot
//! semantics closely enough for this codebase). API kept source-compatible:
//! `Mutex::lock` returns a guard directly, `Condvar::wait` takes
//! `&mut MutexGuard`, and `MutexGuard::unlocked` temporarily releases.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

fn unpoison<G>(r: Result<G, sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(sync::PoisonError::into_inner)
}

/// A mutual-exclusion lock (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { lock: self, guard: Some(unpoison(self.inner.lock())) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { lock: self, guard: Some(g) }),
            Err(TryLockError::Poisoned(p)) => {
                Some(MutexGuard { lock: self, guard: Some(p.into_inner()) })
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// `None` only transiently inside `unlocked`/`Condvar::wait`.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Runs `f` with the mutex unlocked, re-acquiring before returning.
    pub fn unlocked<U>(s: &mut Self, f: impl FnOnce() -> U) -> U {
        s.guard = None;
        let out = f();
        s.guard = Some(unpoison(s.lock.inner.lock()));
        out
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: unpoison(self.inner.read()) }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: unpoison(self.inner.write()) }
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A condition variable working with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically releases the guard's mutex and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        guard.guard = Some(unpoison(self.inner.wait(inner)));
    }

    /// Waits with a timeout; returns true if the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let inner = guard.guard.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn unlocked_releases() {
        let m = Arc::new(Mutex::new(0));
        let mut g = m.lock();
        let m2 = m.clone();
        MutexGuard::unlocked(&mut g, move || {
            // Lock must be acquirable here.
            *m2.lock() = 7;
        });
        assert_eq!(*g, 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
