//! Offline shim for the subset of `rand` this workspace uses:
//! `rand::rng().fill(&mut buf)` for OS-quality random bytes.
//!
//! Bytes come from `/dev/urandom`; if that fails (non-Unix sandbox),
//! falls back to a SplitMix64 stream seeded from the clock and address
//! space layout — not cryptographically strong, but never blocks.

use std::fs::File;
use std::io::Read;

/// Extension trait providing `fill` on RNG handles.
pub trait RngExt {
    /// Fills `buf` with random bytes.
    fn fill(&mut self, buf: &mut [u8]);
}

/// Handle to the OS random source.
pub struct ThreadRng {
    urandom: Option<File>,
    fallback: u64,
}

/// Returns a handle to the OS random source.
#[must_use]
pub fn rng() -> ThreadRng {
    let urandom = File::open("/dev/urandom").ok();
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e3779b97f4a7c15);
    let aslr = (&now as *const u64) as u64;
    ThreadRng { urandom, fallback: now ^ aslr.rotate_left(17) }
}

impl RngExt for ThreadRng {
    fn fill(&mut self, buf: &mut [u8]) {
        if let Some(f) = self.urandom.as_mut() {
            if f.read_exact(buf).is_ok() {
                return;
            }
            self.urandom = None;
        }
        for chunk in buf.chunks_mut(8) {
            // SplitMix64 step.
            self.fallback = self.fallback.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.fallback;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_produces_varied_bytes() {
        let mut buf = [0u8; 64];
        rng().fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 64];
        rng().fill(&mut buf2);
        assert_ne!(buf, buf2);
    }

    #[test]
    fn fallback_stream_works() {
        let mut r = ThreadRng { urandom: None, fallback: 42 };
        let mut buf = [0u8; 33];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
