//! Offline shim for the subset of `crossbeam` this workspace uses:
//! an unbounded MPMC channel with disconnect-on-last-sender-drop.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    struct Chan<T> {
        shared: Mutex<Shared<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// (This shim never reports it: receivers only disconnect by dropping,
    /// which the sending side does not track — sends into a receiverless
    /// channel simply queue, as the workspace never relies on that signal.)
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel (cloneable: MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            shared: Mutex::new(Shared { queue: VecDeque::new(), senders: 1 }),
            ready: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut shared =
                self.chan.shared.lock().unwrap_or_else(PoisonError::into_inner);
            shared.queue.push_back(value);
            drop(shared);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut shared =
                self.chan.shared.lock().unwrap_or_else(PoisonError::into_inner);
            shared.senders -= 1;
            let disconnected = shared.senders == 0;
            drop(shared);
            if disconnected {
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut shared =
                self.chan.shared.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = shared.queue.pop_front() {
                    return Ok(v);
                }
                if shared.senders == 0 {
                    return Err(RecvError);
                }
                shared = self
                    .chan
                    .ready
                    .wait(shared)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Returns immediately with a value if one is queued.
        pub fn try_recv(&self) -> Option<T> {
            self.chan
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { chan: self.chan.clone() }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            let t = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn multiple_receivers_share_work() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let a = std::thread::spawn(move || {
                let mut n = 0;
                while rx.recv().is_ok() {
                    n += 1;
                }
                n
            });
            let b = std::thread::spawn(move || {
                let mut n = 0;
                while rx2.recv().is_ok() {
                    n += 1;
                }
                n
            });
            assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
        }
    }
}
